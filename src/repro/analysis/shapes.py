"""Abstract interpretation of numpy expressions: shapes, dtypes, ranges.

The performance rules (FRL015–FRL019) need facts no purely syntactic pass
can supply: *is this loop bound an array dimension?*, *is this subscript a
fancy (copying) index?*, *can this log argument be zero?*. This module
infers them by abstractly executing function bodies over a small value
lattice:

- ``kind``  — ``array`` / ``scalar`` / ``dim`` (a value read off an array
  dimension: ``x.shape[i]``, ``len(arr)``) / ``seq`` / ``other`` /
  ``unknown``;
- ``rank``  — number of axes when statically evident (literal shape
  tuples, axis-reducing ops), else ``None``;
- ``dtype`` — ``bool < int < float32 < float64`` with numpy promotion;
- ``rng``   — value range: ``pos`` / ``nonneg`` / ``unknown``, following
  the FRL003 positivity conventions (``abs``/``square``→nonneg, guarded
  ``x if x > 0 else c`` and ``x[x > 0]`` refine to ``pos``).

Everything degrades to ``unknown`` rather than guessing: a dynamic shape
or an attribute read the pass cannot see yields no facts, and rules that
key on positive evidence therefore stay silent (the adversarial fixture
tests assert exactly this).

Interprocedurally, :class:`ShapeEngine` mirrors the PR-4 taint worklist
(:mod:`repro.analysis.dataflow`): function summaries (joined parameter
facts in, return fact out) propagate along resolved call-graph edges to a
fixed point, so ``x = check_2d(x, "x")`` is known to yield an array three
modules away from the cast. Unlike the taint engine it replays *ASTs*
(re-parsed once per module, cached) instead of indexed op summaries: the
op stream deliberately drops loop structure and attribute chains, both of
which are the whole point here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path

__all__ = ["AbstractValue", "UNKNOWN", "join", "promote_dtype", "ShapeEngine", "FunctionEvaluator"]

#: Dtype lattice in promotion order (numpy semantics for the cases the
#: rules care about; everything else is None = unknown).
DTYPE_ORDER = {"bool": 0, "int": 1, "float32": 2, "float64": 3}

#: numpy constructor names (sans ``numpy.`` prefix) that allocate a fresh
#: array whose size is given by their arguments.
ALLOC_FUNCTIONS = frozenset(
    {
        "zeros", "ones", "empty", "full", "eye", "identity",
        "arange", "linspace", "logspace", "tile",
        "zeros_like", "ones_like", "empty_like", "full_like",
    }
)

#: numpy functions that materialize a new array by copying inputs.
CONCAT_FUNCTIONS = frozenset({"concatenate", "vstack", "hstack", "stack", "column_stack", "append"})

#: Linear-algebra work heavy enough that loop-invariant recomputation
#: (a Gram matrix per iteration) is worth flagging.
GRAM_FUNCTIONS = frozenset(
    {"dot", "matmul", "inner", "outer", "einsum", "linalg.inv", "linalg.solve",
     "linalg.cholesky", "linalg.pinv", "linalg.lstsq", "linalg.svd", "linalg.eigh"}
)


@dataclass(frozen=True)
class AbstractValue:
    """One point of the value lattice. Immutable; ``UNKNOWN`` is the top."""

    kind: str = "unknown"  # array | scalar | dim | seq | other | unknown
    rank: "int | None" = None
    dtype: "str | None" = None
    rng: str = "unknown"  # pos | nonneg | unknown
    #: True when the value derives from an array dimension (``x.shape[i]``,
    #: ``len(arr)``, or a ``range()`` over such a value).
    from_dim: bool = False
    #: True for scalars obtained by Python-iterating an array (FRL017c).
    from_elem: bool = False

    def is_array(self) -> bool:
        return self.kind == "array"

    def is_index_scalar(self) -> bool:
        """Safe basic-indexing subscript: an integer-like scalar or dim."""
        return self.kind in ("dim", "scalar") and self.dtype in (None, "bool", "int")


UNKNOWN = AbstractValue()


def promote_dtype(a: "str | None", b: "str | None") -> "str | None":
    if a is None or b is None:
        return None
    return a if DTYPE_ORDER[a] >= DTYPE_ORDER[b] else b


def _join_rng(a: str, b: str) -> str:
    if a == b:
        return a
    if {a, b} == {"pos", "nonneg"}:
        return "nonneg"
    return "unknown"


def join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound: keep only facts both branches agree on."""
    if a == b:
        return a
    return AbstractValue(
        kind=a.kind if a.kind == b.kind else "unknown",
        rank=a.rank if a.rank == b.rank else None,
        dtype=a.dtype if a.dtype == b.dtype else None,
        rng=_join_rng(a.rng, b.rng),
        from_dim=a.from_dim and b.from_dim,
        from_elem=a.from_elem or b.from_elem,
    )


def _const_value(value: object) -> AbstractValue:
    if isinstance(value, bool):
        return AbstractValue(kind="scalar", dtype="bool", rng="nonneg")
    if isinstance(value, int):
        rng = "pos" if value > 0 else ("nonneg" if value == 0 else "unknown")
        return AbstractValue(kind="scalar", dtype="int", rng=rng)
    if isinstance(value, float):
        rng = "pos" if value > 0 else ("nonneg" if value == 0 else "unknown")
        return AbstractValue(kind="scalar", dtype="float64", rng=rng)
    if isinstance(value, str):
        return AbstractValue(kind="other")
    return UNKNOWN


def _dtype_from_expr(node: "ast.AST | None", resolve) -> "str | None":
    """Resolve a ``dtype=`` argument to a lattice dtype when evident."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    else:
        dotted = resolve(node)
        if dotted is None:
            return None
        name = dotted.rsplit(".", 1)[-1]
    mapping = {
        "bool": "bool", "bool_": "bool",
        "int": "int", "intp": "int", "int8": "int", "int16": "int",
        "int32": "int", "int64": "int", "uint8": "int", "uint16": "int",
        "uint32": "int", "uint64": "int",
        "float32": "float32", "single": "float32",
        "float64": "float64", "float": "float64", "double": "float64",
    }
    return mapping.get(name)


def _rank_from_shape_arg(node: "ast.AST | None") -> "int | None":
    """Rank of ``np.zeros(<node>)``-style shape arguments, when literal."""
    if node is None:
        return None
    if isinstance(node, (ast.Tuple, ast.List)):
        return len(node.elts)
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return 1
    if isinstance(node, ast.Name):
        return 1  # a bare name shape is a single extent in idiomatic code
    return None


class _LoopFrame:
    """One active ``for`` loop during evaluation."""

    def __init__(self, node: ast.For, carried: "set[str]", iter_value: AbstractValue,
                 dim_range: bool) -> None:
        self.node = node
        #: Names (re)bound anywhere in the loop body, incl. the targets.
        self.carried = carried
        self.iter_value = iter_value
        #: The loop iterates ``range()`` over an array-dimension value.
        self.dim_range = dim_range


class Hooks:
    """Observation points :class:`FunctionEvaluator` calls during a replay.

    The perf pass subclasses this; the base class is a no-op so the
    interprocedural fixed point can run the same evaluator without rule
    overhead.
    """

    def on_loop_enter(self, node: ast.For, frame: _LoopFrame, ev: "FunctionEvaluator") -> None:
        pass

    def on_loop_exit(self, node: ast.For, frame: _LoopFrame, ev: "FunctionEvaluator") -> None:
        pass

    def on_call(self, node: ast.Call, dotted: "str | None", arg_values: "list[AbstractValue]",
                result: AbstractValue, ev: "FunctionEvaluator") -> None:
        pass

    def on_binop(self, node: ast.BinOp, left: AbstractValue, right: AbstractValue,
                 ev: "FunctionEvaluator") -> None:
        pass

    def on_subscript_load(self, node: ast.Subscript, base: AbstractValue,
                          fancy: bool, ev: "FunctionEvaluator") -> None:
        pass


@dataclass
class _Summary:
    """One evaluation's interprocedural outcome."""

    #: (callee qualname, param name, AbstractValue) facts flowing out.
    outgoing: list = field(default_factory=list)
    return_value: AbstractValue = UNKNOWN
    saw_return: bool = False


class FunctionEvaluator:
    """Abstractly execute one function body over the value lattice.

    Branches are joined (both arms evaluated on copies of the
    environment), loops are evaluated once with loop-carried names
    demoted first — a flow-insensitive over-approximation that can only
    *lose* facts, never invent them.
    """

    def __init__(self, module, funcdef: "ast.FunctionDef", qualname: str,
                 engine: "ShapeEngine | None" = None, hooks: "Hooks | None" = None,
                 param_facts: "dict[str, AbstractValue] | None" = None) -> None:
        self.module = module  # ModuleIndex
        self.funcdef = funcdef
        self.qualname = qualname
        self.engine = engine
        self.hooks = hooks or Hooks()
        self.env: dict[str, AbstractValue] = {}
        self.loops: list[_LoopFrame] = []
        self.summary = _Summary()
        self._resolutions = self._site_resolutions()
        for arg in (funcdef.args.posonlyargs + funcdef.args.args + funcdef.args.kwonlyargs):
            self.env[arg.arg] = (param_facts or {}).get(arg.arg, UNKNOWN)

    # -- context ---------------------------------------------------------

    def _site_resolutions(self) -> dict:
        if self.engine is None:
            return {}
        sites = self.engine.graph.site_resolutions.get(self.qualname, [])
        return {
            (op["lineno"], op["col"]): resolution
            for op, resolution in sites
            if op["op"] == "call"
        }

    def resolve(self, node: ast.AST) -> "str | None":
        """Dotted name of an attribute/name chain via the module's aliases."""
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        head = self.module.aliases.get(cur.id, cur.id)
        parts.append(head)
        return ".".join(reversed(parts))

    def numpy_name(self, node: ast.AST) -> "str | None":
        """``numpy.``-stripped dotted name when the callee is numpy."""
        dotted = self.resolve(node)
        if dotted is None or not dotted.startswith("numpy."):
            return None
        return dotted[len("numpy."):]

    def loop_depth(self) -> int:
        return len(self.loops)

    def is_loop_carried(self, name: str) -> bool:
        return any(name in frame.carried for frame in self.loops)

    def names_in(self, node: ast.AST) -> "set[str]":
        return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}

    def carries_loop_state(self, node: ast.AST) -> bool:
        """Does any name in ``node`` vary across the innermost loops?"""
        return any(self.is_loop_carried(name) for name in self.names_in(node))

    # -- driver ----------------------------------------------------------

    def run(self) -> _Summary:
        self.visit_body(self.funcdef.body)
        return self.summary

    def visit_body(self, body: "list[ast.stmt]") -> None:
        for stmt in body:
            self.visit_stmt(stmt)

    # -- statements ------------------------------------------------------

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self.env[stmt.name] = AbstractValue(kind="other")
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, value, source=stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.eval(stmt.value), source=stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            current = self.eval(ast.Name(id=t, ctx=ast.Load())) if isinstance(
                stmt.target, ast.Name) and (t := stmt.target.id) else UNKNOWN
            update = self.eval(stmt.value)
            synthetic = ast.BinOp(left=stmt.target, op=stmt.op, right=stmt.value)
            ast.copy_location(synthetic, stmt)
            self.hooks.on_binop(synthetic, current, update, self)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = join(current, self._binop_value(stmt.op, current, update))
            elif isinstance(stmt.target, ast.Subscript):
                self.eval(stmt.target.value)
        elif isinstance(stmt, ast.Return):
            value = self.eval(stmt.value) if stmt.value is not None else AbstractValue(kind="other")
            if self.summary.saw_return:
                self.summary.return_value = join(self.summary.return_value, value)
            else:
                self.summary.return_value = value
                self.summary.saw_return = True
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.For):
            self._visit_for(stmt)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self._demote(self._store_names(stmt.body))
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            before = dict(self.env)
            self.visit_body(stmt.body)
            after_body = self.env
            self.env = dict(before)
            self.visit_body(stmt.orelse)
            self.env = self._join_envs(after_body, self.env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value, source=item.context_expr)
            self.visit_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.visit_body(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self.env[handler.name] = UNKNOWN
                self.visit_body(handler.body)
            self.visit_body(stmt.orelse)
            self.visit_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def _visit_for(self, stmt: ast.For) -> None:
        iter_value = self.eval(stmt.iter)
        carried = self._store_names(stmt.body) | set(self._target_names(stmt.target))
        self._demote(self._store_names(stmt.body) - set(self._target_names(stmt.target)))
        self._bind_loop_target(stmt.target, stmt.iter, iter_value)
        frame = _LoopFrame(stmt, carried, iter_value, dim_range=iter_value.from_dim
                           and iter_value.kind == "seq")
        self.loops.append(frame)
        self.hooks.on_loop_enter(stmt, frame, self)
        self.visit_body(stmt.body)
        self.hooks.on_loop_exit(stmt, frame, self)
        self.loops.pop()
        self.visit_body(stmt.orelse)

    def _bind_loop_target(self, target: ast.AST, iter_expr: ast.AST,
                          iter_value: AbstractValue) -> None:
        """Bind loop targets from the iterable's element abstraction."""
        if iter_value.kind == "seq":
            if iter_value.from_dim or iter_value.dtype == "int":
                element = AbstractValue(
                    kind="dim" if iter_value.from_dim else "scalar",
                    dtype="int",
                    rng="nonneg",
                    from_dim=iter_value.from_dim,
                )
            else:
                element = UNKNOWN
        elif iter_value.is_array():
            # Iterating a 1-D array yields Python scalars (FRL017c fodder);
            # higher ranks yield sub-arrays.
            if iter_value.rank == 1:
                element = AbstractValue(kind="scalar", dtype=iter_value.dtype,
                                        rng=iter_value.rng, from_elem=True)
            else:
                element = AbstractValue(kind="array", dtype=iter_value.dtype,
                                        rng=iter_value.rng, from_elem=iter_value.rank is None)
        else:
            element = UNKNOWN
        # ``enumerate(...)``: (index, element) pairs.
        enumerated = (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Name)
            and iter_expr.func.id == "enumerate"
        )
        if enumerated and isinstance(target, (ast.Tuple, ast.List)) and len(target.elts) == 2:
            inner = self.eval(iter_expr.args[0]) if iter_expr.args else UNKNOWN
            index = AbstractValue(kind="scalar", dtype="int", rng="nonneg")
            self._bind(target.elts[0], index)
            self._bind_loop_target(target.elts[1], iter_expr.args[0] if iter_expr.args else
                                   ast.Constant(value=None), inner)
            return
        self._bind(target, element)

    # -- binding helpers -------------------------------------------------

    def _target_names(self, target: ast.AST) -> "list[str]":
        names: list[str] = []
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                names.extend(self._target_names(element))
        elif isinstance(target, ast.Starred):
            names.extend(self._target_names(target.value))
        return names

    def _store_names(self, body: "list[ast.stmt]") -> "set[str]":
        names: set[str] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                    names.add(node.id)
                elif isinstance(node, (ast.Subscript, ast.Attribute)) and isinstance(
                        node.ctx, ast.Store):
                    base = node.value
                    while isinstance(base, (ast.Subscript, ast.Attribute)):
                        base = base.value
                    if isinstance(base, ast.Name):
                        names.add(base.id)
        return names

    def _demote(self, names: "set[str]") -> None:
        for name in names:
            self.env[name] = UNKNOWN

    def _bind(self, target: ast.AST, value: AbstractValue,
              source: "ast.AST | None" = None) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            # ``n, f = codes.shape`` — destructuring a dims sequence gives
            # every target a dim scalar; tuple literals destructure 1:1.
            if value.kind == "seq" and value.from_dim:
                for element in target.elts:
                    self._bind(element, AbstractValue(kind="dim", dtype="int",
                                                      rng="nonneg", from_dim=True))
                return
            if isinstance(source, ast.Tuple) and len(source.elts) == len(target.elts):
                for element, src in zip(target.elts, source.elts):
                    self._bind(element, self.eval(src), source=src)
                return
            for element in target.elts:
                self._bind(element, UNKNOWN)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, UNKNOWN)
        # Subscript/Attribute stores mutate a container; its binding stays.

    def _join_envs(self, a: dict, b: dict) -> dict:
        out: dict[str, AbstractValue] = {}
        for name in set(a) | set(b):
            out[name] = join(a.get(name, UNKNOWN), b.get(name, UNKNOWN))
        return out

    # -- expressions -----------------------------------------------------

    def eval(self, node: "ast.AST | None") -> AbstractValue:
        if node is None:
            return UNKNOWN
        method = getattr(self, f"_eval_{type(node).__name__.lower()}", None)
        if method is not None:
            return method(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return UNKNOWN

    def _eval_constant(self, node: ast.Constant) -> AbstractValue:
        return _const_value(node.value)

    def _eval_name(self, node: ast.Name) -> AbstractValue:
        return self.env.get(node.id, UNKNOWN)

    def _eval_attribute(self, node: ast.Attribute) -> AbstractValue:
        base = self.eval(node.value)
        if node.attr == "shape":
            return AbstractValue(kind="seq", from_dim=True)
        if node.attr in ("ndim", "size"):
            return AbstractValue(kind="dim", dtype="int", rng="nonneg", from_dim=True)
        if node.attr == "T":
            return base if base.is_array() else UNKNOWN
        if node.attr == "dtype":
            return AbstractValue(kind="other")
        dotted = self.resolve(node)
        if dotted in ("numpy.pi", "numpy.e", "math.pi", "math.e"):
            return AbstractValue(kind="scalar", dtype="float64", rng="pos")
        if dotted in ("numpy.inf",):
            return AbstractValue(kind="scalar", dtype="float64", rng="pos")
        return UNKNOWN

    def _eval_tuple(self, node: ast.Tuple) -> AbstractValue:
        for element in node.elts:
            self.eval(element)
        return AbstractValue(kind="other")

    _eval_list = _eval_tuple
    _eval_set = _eval_tuple

    def _eval_dict(self, node: ast.Dict) -> AbstractValue:
        for child in list(node.keys) + list(node.values):
            if child is not None:
                self.eval(child)
        return AbstractValue(kind="other")

    def _eval_joinedstr(self, node: ast.JoinedStr) -> AbstractValue:
        for child in node.values:
            self.eval(child)
        return AbstractValue(kind="other")

    def _eval_formattedvalue(self, node: ast.FormattedValue) -> AbstractValue:
        self.eval(node.value)
        return AbstractValue(kind="other")

    def _eval_ifexp(self, node: ast.IfExp) -> AbstractValue:
        self.eval(node.test)
        body = self._refine_positive(node.body, node.test, self.eval(node.body))
        orelse = self.eval(node.orelse)
        return join(body, orelse)

    def _refine_positive(self, expr: ast.AST, test: ast.AST,
                         value: AbstractValue) -> AbstractValue:
        """``x if x > 0 else d`` — inside the guarded arm, x is positive."""
        if not isinstance(expr, ast.Name):
            return value
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Gt, ast.GtE))
            and isinstance(test.left, ast.Name)
            and test.left.id == expr.id
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
        ):
            bound = test.comparators[0].value
            if isinstance(bound, (int, float)) and not isinstance(bound, bool):
                if bound > 0 or (bound == 0 and isinstance(test.ops[0], ast.Gt)):
                    return replace(value, rng="pos")
                if bound == 0:
                    return replace(value, rng=_join_rng(value.rng, "nonneg")
                                   if value.rng == "pos" else "nonneg")
        if isinstance(test, ast.Name) and test.id == expr.id:
            # ``x if x else d`` — truthiness excludes exact zero but not
            # negatives; only an already-nonneg value is promoted.
            if value.rng == "nonneg":
                return replace(value, rng="pos")
        return value

    def _eval_compare(self, node: ast.Compare) -> AbstractValue:
        operands = [self.eval(node.left)] + [self.eval(c) for c in node.comparators]
        if any(v.is_array() for v in operands):
            ranks = [v.rank for v in operands if v.is_array()]
            return AbstractValue(kind="array", rank=ranks[0], dtype="bool", rng="nonneg")
        return AbstractValue(kind="scalar", dtype="bool", rng="nonneg")

    def _eval_boolop(self, node: ast.BoolOp) -> AbstractValue:
        values = [self.eval(v) for v in node.values]
        return values[-1] if values else UNKNOWN

    def _eval_unaryop(self, node: ast.UnaryOp) -> AbstractValue:
        operand = self.eval(node.operand)
        if isinstance(node.op, ast.Invert):
            return replace(operand, rng="unknown") if operand.is_array() else operand
        if isinstance(node.op, ast.Not):
            return AbstractValue(kind=operand.kind if operand.is_array() else "scalar",
                                 rank=operand.rank, dtype="bool", rng="nonneg")
        if isinstance(node.op, ast.USub):
            return replace(operand, rng="unknown", from_dim=False)
        return operand

    def _binop_value(self, op: ast.operator, left: AbstractValue,
                     right: AbstractValue) -> AbstractValue:
        kind = "array" if left.is_array() or right.is_array() else (
            "scalar" if {left.kind, right.kind} <= {"scalar", "dim"} else "unknown")
        rank = left.rank if left.is_array() else right.rank
        if left.is_array() and right.is_array() and left.rank != right.rank:
            rank = None
        dtype = promote_dtype(left.dtype, right.dtype)
        if isinstance(op, (ast.Add, ast.Mult)):
            rng = "pos" if "pos" in (left.rng, right.rng) and "unknown" not in (
                left.rng, right.rng) else (
                "nonneg" if left.rng == right.rng == "nonneg" else "unknown")
            if isinstance(op, ast.Mult):
                rng = ("pos" if left.rng == right.rng == "pos"
                       else "nonneg" if {left.rng, right.rng} <= {"pos", "nonneg"}
                       else "unknown")
        elif isinstance(op, (ast.Div, ast.FloorDiv)):
            rng = ("pos" if left.rng == "pos" and right.rng == "pos"
                   else "nonneg" if {left.rng, right.rng} <= {"pos", "nonneg"}
                   else "unknown")
            if dtype in ("bool", "int") and isinstance(op, ast.Div):
                dtype = "float64"
        elif isinstance(op, ast.Pow):
            rng = left.rng if left.rng in ("pos", "nonneg") else "unknown"
        elif isinstance(op, ast.Mod):
            rng = "nonneg" if right.rng in ("pos", "nonneg") else "unknown"
        else:
            rng = "unknown"
        if isinstance(op, ast.MatMult):
            kind, rng = "array", "unknown"
        return AbstractValue(kind=kind, rank=rank, dtype=dtype, rng=rng)

    def _eval_binop(self, node: ast.BinOp) -> AbstractValue:
        left = self.eval(node.left)
        right = self.eval(node.right)
        self.hooks.on_binop(node, left, right, self)
        return self._binop_value(node.op, left, right)

    def _eval_subscript(self, node: ast.Subscript) -> AbstractValue:
        base = self.eval(node.value)
        # ``x.shape[i]`` — a dimension read, whatever x is.
        if isinstance(node.value, ast.Attribute) and node.value.attr == "shape":
            self.eval(node.slice)
            return AbstractValue(kind="dim", dtype="int", rng="nonneg", from_dim=True)
        if base.kind == "seq" and base.from_dim:
            self.eval(node.slice)
            return AbstractValue(kind="dim", dtype="int", rng="nonneg", from_dim=True)
        components = (list(node.slice.elts) if isinstance(node.slice, ast.Tuple)
                      else [node.slice])
        component_values = [
            self.eval(c) if not isinstance(c, ast.Slice) else self._eval_slice_parts(c)
            for c in components
        ]
        fancy = self._is_fancy(base, components, component_values)
        result = self._subscript_result(node, base, components, component_values)
        if isinstance(node.ctx, ast.Load):
            self.hooks.on_subscript_load(node, base, fancy, self)
        return result

    def _eval_slice_parts(self, node: ast.Slice) -> AbstractValue:
        for part in (node.lower, node.upper, node.step):
            if part is not None:
                self.eval(part)
        return AbstractValue(kind="other")  # a slice object, never fancy

    def _is_fancy(self, base: AbstractValue, components: list,
                  values: "list[AbstractValue]") -> bool:
        """Does this index trigger numpy advanced (copying) indexing?"""
        for component, value in zip(components, values):
            if isinstance(component, ast.Slice):
                continue
            if value.is_array():
                return True
            if isinstance(component, (ast.List,)):
                return True
            if isinstance(component, ast.Call):
                name = self.numpy_name(component.func)
                if name == "ix_":
                    return True
            # A loop-varying bare name indexing a *known array* without a
            # provable integer-scalar value: the engine's per-fold
            # row-index case. Requiring an array base keeps dict/list
            # lookups with loop keys out (their base kind is unknown).
            if (
                base.is_array()
                and isinstance(component, ast.Name)
                and self.is_loop_carried(component.id)
                and not value.is_index_scalar()
                and value.kind != "other"
            ):
                return True
        return False

    def _subscript_result(self, node: ast.Subscript, base: AbstractValue,
                          components: list, values: "list[AbstractValue]") -> AbstractValue:
        if base.kind == "seq":
            return UNKNOWN
        has_array_index = any(v.is_array() for v in values) or any(
            isinstance(c, ast.Call) and self.numpy_name(c.func) == "ix_"
            for c in components
        )
        if not base.is_array() and not has_array_index:
            return UNKNOWN
        # Fancy indexing implies the base is an array even when inference
        # lost track of it (attributes, shared state).
        rank = base.rank
        if rank is not None and not has_array_index:
            reductions = sum(1 for v in values if v.is_index_scalar())
            rank = max(rank - reductions, 0)
            if rank == 0:
                refined = self._refine_mask(node, base)
                return AbstractValue(kind="scalar", dtype=base.dtype, rng=refined.rng)
        elif has_array_index:
            rank = None
        value = AbstractValue(kind="array", rank=rank, dtype=base.dtype, rng=base.rng)
        return self._refine_mask(node, value)

    def _refine_mask(self, node: ast.Subscript, value: AbstractValue) -> AbstractValue:
        """``x[x > 0]`` selects provably positive entries (FRL003 idiom)."""
        index = node.slice
        if (
            isinstance(index, ast.Compare)
            and len(index.ops) == 1
            and isinstance(index.ops[0], (ast.Gt, ast.GtE))
            and isinstance(index.left, ast.Name)
            and isinstance(node.value, ast.Name)
            and index.left.id == node.value.id
            and len(index.comparators) == 1
            and isinstance(index.comparators[0], ast.Constant)
        ):
            bound = index.comparators[0].value
            if isinstance(bound, (int, float)) and not isinstance(bound, bool):
                if bound > 0 or (bound == 0 and isinstance(index.ops[0], ast.Gt)):
                    return replace(value, rng="pos")
                if bound == 0:
                    return replace(value, rng="nonneg")
        return value

    def _eval_lambda(self, node: ast.Lambda) -> AbstractValue:
        return AbstractValue(kind="other")

    def _eval_listcomp(self, node: "ast.ListComp") -> AbstractValue:
        return self._eval_comp(node)

    _eval_setcomp = _eval_listcomp
    _eval_generatorexp = _eval_listcomp

    def _eval_dictcomp(self, node: "ast.DictComp") -> AbstractValue:
        return self._eval_comp(node)

    def _eval_comp(self, node: ast.AST) -> AbstractValue:
        # Comprehensions are already-idiomatic bulk operations: evaluate
        # their parts for value propagation, but mute the hooks so the
        # perf rules never treat them as hot loops (their targets are
        # also invisible to the rules' loop-carried reasoning).
        before = dict(self.env)
        saved_hooks = self.hooks
        self.hooks = Hooks()
        try:
            for comp in node.generators:
                self.eval(comp.iter)
                self._bind(comp.target, UNKNOWN)
                for cond in comp.ifs:
                    self.eval(cond)
            if isinstance(node, ast.DictComp):
                self.eval(node.key)
                self.eval(node.value)
            else:
                self.eval(node.elt)
        finally:
            self.hooks = saved_hooks
            self.env = before
        return AbstractValue(kind="other")

    def _eval_starred(self, node: ast.Starred) -> AbstractValue:
        return self.eval(node.value)

    def _eval_await(self, node: "ast.Await") -> AbstractValue:
        return self.eval(node.value)

    # -- calls -----------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> AbstractValue:
        arg_values = [self.eval(a) for a in node.args]
        kw_values = {kw.arg: self.eval(kw.value) for kw in node.keywords}
        dotted = self.resolve(node.func)
        result = self._call_result(node, dotted, arg_values, kw_values)
        self.hooks.on_call(node, dotted, arg_values, result, self)
        return result

    def _call_result(self, node: ast.Call, dotted: "str | None",
                     args: "list[AbstractValue]", kwargs: dict) -> AbstractValue:
        numpy_name = dotted[len("numpy."):] if dotted and dotted.startswith("numpy.") else None
        if numpy_name is not None:
            return self._numpy_result(node, numpy_name, args, kwargs)
        if dotted in ("range", "enumerate", "reversed", "sorted", "zip"):
            from_dim = any(v.from_dim for v in args)
            # ``range`` yields int scalars; mark the seq so loop targets
            # bind as safe basic-indexing values.
            dtype = "int" if dotted == "range" else None
            return AbstractValue(kind="seq", dtype=dtype, from_dim=from_dim)
        if dotted == "len":
            if args and (args[0].is_array() or (args[0].kind == "seq" and args[0].from_dim)):
                return AbstractValue(kind="dim", dtype="int", rng="nonneg", from_dim=True)
            # len() of a non-array: nonnegative, but emptiness is usually
            # guarded at the boundary — no positive zero-evidence (FRL018).
            return AbstractValue(kind="scalar", dtype="int")
        if dotted in ("int",):
            base = args[0] if args else UNKNOWN
            return AbstractValue(kind="scalar", dtype="int", rng=base.rng,
                                 from_dim=base.from_dim)
        if dotted in ("float",):
            base = args[0] if args else UNKNOWN
            return AbstractValue(kind="scalar", dtype="float64", rng=base.rng)
        if dotted in ("abs",):
            base = args[0] if args else UNKNOWN
            return replace(base, rng="nonneg") if base.kind != "unknown" else UNKNOWN
        if dotted in ("min", "max") and args:
            rng = ("pos" if (dotted == "max" and any(a.rng == "pos" for a in args))
                   or all(a.rng == "pos" for a in args)
                   else "nonneg" if all(a.rng in ("pos", "nonneg") for a in args)
                   or (dotted == "max" and any(a.rng in ("pos", "nonneg") for a in args))
                   else "unknown")
            return AbstractValue(kind="scalar", dtype=promote_dtype(
                args[0].dtype, args[-1].dtype) if len(args) > 1 else args[0].dtype, rng=rng)
        if dotted in ("math.log", "math.log2", "math.log10", "math.sqrt", "math.exp"):
            return AbstractValue(kind="scalar", dtype="float64",
                                 rng="pos" if dotted == "math.exp" else "unknown")
        # Method calls on a tracked receiver.
        if isinstance(node.func, ast.Attribute):
            receiver = self.eval(node.func.value)
            method_result = self._method_result(node, node.func.attr, receiver, args, kwargs)
            if method_result is not None:
                return method_result
        # Internal calls: consult (and feed) the interprocedural summaries.
        resolution = self._resolutions.get((node.lineno, node.col_offset))
        if resolution is not None and resolution.kind == "internal" and self.engine is not None:
            self._record_outgoing(resolution.target, node, args, kwargs)
            return self.engine.return_facts.get(resolution.target, UNKNOWN)
        return UNKNOWN

    def _method_result(self, node: ast.Call, attr: str, receiver: AbstractValue,
                       args: "list[AbstractValue]", kwargs: dict) -> "AbstractValue | None":
        has_axis = "axis" in kwargs or len(args) >= 1
        if attr in ("sum", "mean"):
            if not receiver.is_array():
                return None
            rank = (None if receiver.rank is None else
                    (max(receiver.rank - 1, 0) if has_axis else 0))
            dtype = "float64" if attr == "mean" and receiver.dtype in ("bool", "int") else receiver.dtype
            kind = "array" if (has_axis and (rank is None or rank > 0)) or (
                has_axis and "keepdims" in kwargs) else ("scalar" if rank == 0 else "array")
            if not has_axis:
                kind, rank = "scalar", None
            return AbstractValue(kind=kind, rank=rank, dtype=dtype, rng=receiver.rng)
        if attr in ("std", "var"):
            return AbstractValue(kind="array" if has_axis else "scalar",
                                 dtype="float64" if receiver.dtype != "float32" else "float32",
                                 rng="nonneg")
        if attr in ("min", "max"):
            if not receiver.is_array():
                return None
            return AbstractValue(kind="array" if has_axis else "scalar",
                                 dtype=receiver.dtype, rng=receiver.rng)
        if attr in ("argmax", "argmin", "argsort"):
            return AbstractValue(kind="array" if attr == "argsort" else "scalar",
                                 dtype="int", rng="nonneg")
        if attr == "astype":
            dtype = _dtype_from_expr(node.args[0] if node.args else None, self.resolve)
            if receiver.is_array() or receiver.kind == "unknown":
                return AbstractValue(kind="array", rank=receiver.rank, dtype=dtype,
                                     rng=receiver.rng)
            return None
        if attr in ("copy", "ravel", "flatten", "reshape", "clip", "squeeze"):
            if not receiver.is_array():
                return None
            rank = receiver.rank
            if attr in ("ravel", "flatten"):
                rank = 1
            elif attr in ("reshape", "squeeze"):
                rank = None
            return AbstractValue(kind="array", rank=rank, dtype=receiver.dtype,
                                 rng=receiver.rng)
        if attr == "item":
            return AbstractValue(kind="scalar", dtype=receiver.dtype, rng=receiver.rng)
        return None

    def _numpy_result(self, node: ast.Call, name: str, args: "list[AbstractValue]",
                      kwargs: dict) -> AbstractValue:
        dtype_kw = next((kw.value for kw in node.keywords if kw.arg == "dtype"), None)
        explicit_dtype = _dtype_from_expr(dtype_kw, self.resolve)
        first = args[0] if args else UNKNOWN

        if name in ("zeros", "ones", "empty", "full", "eye", "identity"):
            rank = _rank_from_shape_arg(node.args[0] if node.args else None)
            if name in ("eye", "identity"):
                rank = 2
            rng = {"zeros": "nonneg", "ones": "pos", "eye": "nonneg",
                   "identity": "nonneg"}.get(name, "unknown")
            if name == "full" and len(args) >= 2:
                rng = args[1].rng
            return AbstractValue(kind="array", rank=rank,
                                 dtype=explicit_dtype or "float64", rng=rng)
        if name in ("zeros_like", "ones_like", "empty_like", "full_like"):
            rng = {"zeros_like": "nonneg", "ones_like": "pos"}.get(name, "unknown")
            if name == "full_like" and len(args) >= 2:
                rng = args[1].rng
            return AbstractValue(kind="array", rank=first.rank,
                                 dtype=explicit_dtype or first.dtype, rng=rng)
        if name in ("array", "asarray", "ascontiguousarray", "asfortranarray", "copy"):
            rank = first.rank if first.is_array() else (
                _nested_list_rank(node.args[0]) if node.args else None)
            return AbstractValue(kind="array", rank=rank,
                                 dtype=explicit_dtype or first.dtype, rng=first.rng)
        if name == "arange":
            rng = "nonneg" if all(a.rng in ("pos", "nonneg") for a in args) else "unknown"
            return AbstractValue(kind="array", rank=1,
                                 dtype=explicit_dtype or "int"
                                 if all(a.dtype in ("int", "bool", None) for a in args)
                                 else explicit_dtype or "float64", rng=rng)
        if name in ("linspace", "logspace"):
            return AbstractValue(kind="array", rank=1,
                                 dtype=explicit_dtype or "float64",
                                 rng="pos" if name == "logspace" else "unknown")
        if name == "exp":
            return AbstractValue(kind=first.kind if first.is_array() else "scalar",
                                 rank=first.rank, dtype=first.dtype or "float64", rng="pos")
        if name in ("log", "log2", "log10"):
            return AbstractValue(kind=first.kind if first.is_array() else "scalar",
                                 rank=first.rank, dtype=first.dtype or "float64", rng="unknown")
        if name == "log1p":
            return AbstractValue(kind=first.kind if first.is_array() else "scalar",
                                 rank=first.rank, dtype=first.dtype or "float64",
                                 rng="nonneg" if first.rng in ("pos", "nonneg") else "unknown")
        if name in ("abs", "absolute", "square", "fabs"):
            return replace(first, rng="nonneg") if first.kind != "unknown" else AbstractValue(
                kind="unknown", rng="nonneg")
        if name == "sqrt":
            # Result range mirrors the argument's: sqrt of an *unknown*
            # value is no positive evidence that zero is attainable.
            return AbstractValue(kind=first.kind, rank=first.rank,
                                 dtype=first.dtype or "float64", rng=first.rng
                                 if first.rng in ("pos", "nonneg") else "unknown")
        if name in ("maximum", "fmax") and len(args) >= 2:
            rng = ("pos" if any(a.rng == "pos" for a in args)
                   else "nonneg" if any(a.rng == "nonneg" for a in args) else "unknown")
            return AbstractValue(kind="array" if any(a.is_array() for a in args) else "scalar",
                                 dtype=promote_dtype(args[0].dtype, args[1].dtype), rng=rng)
        if name in ("minimum", "fmin") and len(args) >= 2:
            rng = ("pos" if all(a.rng == "pos" for a in args)
                   else "nonneg" if all(a.rng in ("pos", "nonneg") for a in args)
                   else "unknown")
            return AbstractValue(kind="array" if any(a.is_array() for a in args) else "scalar",
                                 dtype=promote_dtype(args[0].dtype, args[1].dtype), rng=rng)
        if name == "clip":
            lower = args[1] if len(args) >= 2 else kwargs.get("a_min", UNKNOWN)
            rng = lower.rng if lower.rng in ("pos", "nonneg") else "unknown"
            return AbstractValue(kind=first.kind, rank=first.rank, dtype=first.dtype, rng=rng)
        if name == "where" and len(args) >= 3:
            return AbstractValue(kind="array",
                                 dtype=promote_dtype(args[1].dtype, args[2].dtype),
                                 rng=_join_rng(args[1].rng, args[2].rng))
        if name in CONCAT_FUNCTIONS:
            rank = 2 if name in ("vstack", "column_stack") else None
            return AbstractValue(kind="array", rank=rank, dtype=first.dtype, rng=first.rng
                                 if all(a.rng == first.rng for a in args) else "unknown")
        if name == "unique":
            return AbstractValue(kind="array", rank=1, dtype=first.dtype, rng=first.rng)
        if name in ("bincount", "histogram"):
            # Counts: zero is *routinely* attained — the FRL018 signal.
            return AbstractValue(kind="array", rank=1, dtype="int", rng="nonneg")
        if name in ("flatnonzero", "nonzero", "argwhere", "argsort"):
            return AbstractValue(kind="array", rank=1 if name == "flatnonzero" else None,
                                 dtype="int", rng="nonneg")
        if name in ("argmax", "argmin"):
            has_axis = "axis" in kwargs or len(args) >= 2
            return AbstractValue(kind="array" if has_axis else "scalar", dtype="int",
                                 rng="nonneg")
        if name in ("isnan", "isinf", "isfinite", "isin", "isclose"):
            return AbstractValue(kind="array", rank=first.rank, dtype="bool", rng="nonneg")
        if name in ("sum", "mean", "prod", "median", "nanmean", "nansum"):
            has_axis = "axis" in kwargs or len(args) >= 2
            dtype = ("float64" if name in ("mean", "median", "nanmean")
                     and first.dtype in ("bool", "int") else first.dtype)
            return AbstractValue(kind="array" if has_axis else "scalar", dtype=dtype,
                                 rng=first.rng)
        if name in ("std", "var", "nanstd"):
            has_axis = "axis" in kwargs or len(args) >= 2
            return AbstractValue(kind="array" if has_axis else "scalar",
                                 dtype="float32" if first.dtype == "float32" else "float64",
                                 rng="nonneg")
        if name in ("amin", "amax", "min", "max"):
            has_axis = "axis" in kwargs or len(args) >= 2
            return AbstractValue(kind="array" if has_axis else "scalar",
                                 dtype=first.dtype, rng=first.rng)
        if name in GRAM_FUNCTIONS or name == "matmul":
            dtype = promote_dtype(args[0].dtype, args[1].dtype) if len(args) >= 2 else None
            return AbstractValue(kind="array", dtype=dtype)
        if name in ("transpose", "broadcast_to", "expand_dims", "atleast_1d", "atleast_2d",
                    "ravel", "reshape", "squeeze", "moveaxis", "swapaxes"):
            rank = 1 if name in ("ravel", "atleast_1d") else (
                2 if name == "atleast_2d" else None)
            return AbstractValue(kind="array", rank=rank, dtype=first.dtype, rng=first.rng)
        if name in ("array_split", "split", "hsplit", "vsplit"):
            return AbstractValue(kind="seq")
        if name in ("rint", "floor", "ceil", "round", "trunc"):
            return replace(first, dtype=first.dtype) if first.kind != "unknown" else UNKNOWN
        if name == "tile":
            return AbstractValue(kind="array", dtype=first.dtype, rng=first.rng)
        if name in ("ix_",):
            return AbstractValue(kind="other")
        if name.startswith("random.") or name in ("searchsorted", "digitize"):
            return UNKNOWN
        return UNKNOWN

    def _record_outgoing(self, target: "str | None", node: ast.Call,
                         args: "list[AbstractValue]", kwargs: dict) -> None:
        if target is None or self.engine is None:
            return
        info = self.engine.graph.node(target)
        if info is None:
            return
        params = info.params
        offset = 1 if info.class_name and params and params[0] in ("self", "cls") else 0
        for position, value in enumerate(args):
            slot = position + offset
            if value.kind != "unknown" and slot < len(params):
                self.summary.outgoing.append((target, params[slot], value))
        for name, value in kwargs.items():
            if name is not None and value.kind != "unknown" and name in params:
                self.summary.outgoing.append((target, name, value))


def _nested_list_rank(node: ast.AST) -> "int | None":
    """Rank of ``np.array([[...], ...])`` literals."""
    rank = 0
    cur = node
    while isinstance(cur, (ast.List, ast.Tuple)):
        rank += 1
        cur = cur.elts[0] if cur.elts else None
    return rank or None


class ShapeEngine:
    """Interprocedural fixed point over per-function shape summaries.

    Mirrors :class:`repro.analysis.dataflow.TaintEngine`: a worklist of
    function qualnames, joined parameter facts flowing into callees,
    return facts flowing back to callers, bounded iteration. Facts only
    move *down* the lattice (joins), so the fixed point exists; the
    iteration bound is a belt-and-braces guard, as in the taint engine.
    """

    def __init__(self, project) -> None:
        self.project = project
        self.graph = project.graph
        #: qualname -> {param: AbstractValue} (joined over all call sites)
        self.param_facts: dict[str, dict] = {}
        #: qualname -> AbstractValue of the return
        self.return_facts: dict[str, AbstractValue] = {}
        self._trees: dict[str, "ast.Module | None"] = {}
        self._funcdefs: dict[str, tuple] = {}
        self._callers: dict[str, set] = {}
        self._collect_functions()

    # -- AST plumbing ----------------------------------------------------

    def _tree_for(self, module) -> "ast.Module | None":
        if module.path not in self._trees:
            try:
                source = Path(module.path).read_text(encoding="utf-8")
                self._trees[module.path] = ast.parse(source)
            except (OSError, SyntaxError):
                self._trees[module.path] = None
        return self._trees[module.path]

    def _collect_functions(self) -> None:
        for module in self.project.index.modules.values():
            if not module.is_library:
                continue
            tree = self._tree_for(module)
            if tree is None:
                continue
            for stmt in tree.body:
                if isinstance(stmt, ast.FunctionDef):
                    self._funcdefs[f"{module.name}.{stmt.name}"] = (module, stmt)
                elif isinstance(stmt, ast.ClassDef):
                    for item in stmt.body:
                        if isinstance(item, ast.FunctionDef):
                            qualname = f"{module.name}.{stmt.name}.{item.name}"
                            self._funcdefs[qualname] = (module, item)

    def functions(self) -> "list[str]":
        return sorted(self._funcdefs)

    # -- fixed point -----------------------------------------------------

    def run(self) -> "ShapeEngine":
        for caller, edges in self.graph.edges.items():
            for callee in edges:
                self._callers.setdefault(callee, set()).add(caller)
        queue = self.functions()
        queued = set(queue)
        iterations = 0
        limit = max(64, 8 * len(queue))
        while queue and iterations < limit:
            iterations += 1
            qualname = queue.pop(0)
            queued.discard(qualname)
            summary = self.evaluate(qualname)
            if summary is None:
                continue
            changed: set[str] = set()
            for callee, param, value in summary.outgoing:
                facts = self.param_facts.setdefault(callee, {})
                merged = join(facts[param], value) if param in facts else value
                if facts.get(param) != merged:
                    facts[param] = merged
                    changed.add(callee)
            new_return = summary.return_value if summary.saw_return else UNKNOWN
            old_return = self.return_facts.get(qualname)
            merged_return = new_return if old_return is None else join(old_return, new_return)
            if merged_return != old_return:
                self.return_facts[qualname] = merged_return
                changed.update(self._callers.get(qualname, ()))
            for target in sorted(changed):
                if target in self._funcdefs and target not in queued:
                    queue.append(target)
                    queued.add(target)
        return self

    def evaluate(self, qualname: str, hooks: "Hooks | None" = None) -> "_Summary | None":
        entry = self._funcdefs.get(qualname)
        if entry is None:
            return None
        module, funcdef = entry
        evaluator = FunctionEvaluator(
            module, funcdef, qualname, engine=self, hooks=hooks,
            param_facts=self.param_facts.get(qualname),
        )
        return evaluator.run()
