"""Resolved call graph over a :class:`~repro.analysis.index.ProjectIndex`.

Call sites recorded at index time carry *locally-resolved* callee strings
(import aliases unfolded, module-level symbols qualified). This module
lifts them to project-wide edges:

- a call to ``repro.learners.registry.make_learner`` becomes an edge to
  that function's node;
- ``ClassName(...)`` becomes an edge to ``ClassName.__init__`` (or the
  class node when no ``__init__`` is defined in the indexed tree);
- ``self.method(...)`` resolves through the in-project base-class chain;
- dynamic shapes (``getattr(obj, n)(…)``, methods on arbitrary values,
  calls of call results) are recorded as *unresolved with a reason* so
  the self-check tests can prove what the graph does and does not see.

Resolution classes (``CallResolution.kind``):

``internal``   an indexed function/class — edge exists in the graph;
``external``   a fully-dotted name outside the indexed tree (numpy, stdlib);
``builtin``    a Python builtin;
``local``      a call through a local variable (not a direct call);
``param``      a call through a function parameter (not a direct call);
``unresolved`` a *direct* name the graph should know but cannot find —
               these are the failures the core/ self-check asserts against.
"""

from __future__ import annotations

import builtins
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.index import FunctionInfo, ModuleIndex, ProjectIndex

__all__ = ["CallResolution", "CallGraph", "build_call_graph"]

_BUILTIN_NAMES = frozenset(dir(builtins))


@dataclass(frozen=True)
class CallResolution:
    """Where one call site's callee ended up."""

    kind: str  # internal | external | builtin | local | param | dynamic | unresolved
    target: "str | None"  # qualified node name for internal, dotted for external
    reason: str = ""


class CallGraph:
    """Edges between indexed function nodes, plus per-site resolutions."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        #: caller qualname -> set of callee qualnames (internal edges only)
        self.edges: dict[str, set] = {}
        #: caller qualname -> [(op, CallResolution)]
        self.site_resolutions: dict[str, list] = {}

    # -- construction ---------------------------------------------------

    def build(self) -> "CallGraph":
        for module in self.index.modules.values():
            for local_name, data in module.functions.items():
                info = FunctionInfo.from_dict(data)
                resolutions: list = []
                edges: set = set()
                for op in info.calls():
                    resolution = self.resolve_site(module, info, op)
                    resolutions.append((op, resolution))
                    if resolution.kind == "internal" and resolution.target:
                        edges.add(resolution.target)
                self.edges[info.qualname] = edges
                self.site_resolutions[info.qualname] = resolutions
        return self

    def resolve_site(self, module: ModuleIndex, info: FunctionInfo, op: dict) -> CallResolution:
        callee = op["callee"]
        kind = callee.get("kind")
        if kind == "dynamic":
            return CallResolution("dynamic", None, callee.get("why", "dynamic"))
        if kind == "method":
            recv = callee.get("recv", "")
            if recv == "self" and info.class_name:
                target = self._resolve_self_method(module, info.class_name, callee["attr"])
                if target is not None:
                    return CallResolution("internal", target)
                return CallResolution("dynamic", None, f"self.{callee['attr']} not in indexed bases")
            return CallResolution("dynamic", None, f"method on value {recv!r}")
        name = callee.get("v", "")
        if "." not in name:
            return self._resolve_bare(module, info, name)
        return self._resolve_dotted(name)

    def _resolve_bare(self, module: ModuleIndex, info: FunctionInfo, name: str) -> CallResolution:
        if name in info.local_defs:
            return CallResolution("internal", f"{module.name}.{info.local_defs[name]}")
        if name in info.params:
            return CallResolution("param", None, f"call through parameter {name!r}")
        local_targets = {
            target
            for op in info.ops
            for target in op.get("targets", [])
        } | {
            target
            for op in info.ops
            if op["op"] == "assign"
            for target in op.get("targets", [])
        }
        if name in local_targets:
            return CallResolution("local", None, f"call through local {name!r}")
        if name in module.symbols:
            symbol = module.symbols[name]
            if symbol["kind"] == "class":
                return CallResolution("internal", self._class_ctor(module, name))
            if symbol["kind"] == "function":
                return CallResolution("internal", f"{module.name}.{name}")
            return CallResolution("local", None, f"call through module constant {name!r}")
        if name in _BUILTIN_NAMES:
            return CallResolution("builtin", name)
        return CallResolution("unresolved", None, f"unknown bare name {name!r}")

    def _resolve_dotted(self, dotted: str) -> CallResolution:
        found = self.index.find_symbol(dotted)
        if found is not None:
            module, symbol = found
            if symbol in module.classes:
                return CallResolution("internal", self._class_ctor(module, symbol))
            if module.symbols.get(symbol, {}).get("kind") == "function":
                return CallResolution("internal", f"{module.name}.{symbol}")
            # Imported constant / re-export: treat as resolved-internal data.
            return CallResolution("internal", f"{module.name}.{symbol}")
        if self.index.has_module_prefix(dotted):
            # It names something under an indexed package but no symbol
            # matches — a genuine resolution failure the self-check counts.
            # Re-exports through package __init__ are chased first.
            chased = self._chase_reexport(dotted)
            if chased is not None:
                return chased
            return CallResolution("unresolved", dotted, "no such symbol in indexed tree")
        return CallResolution("external", dotted)

    def _chase_reexport(self, dotted: str) -> "CallResolution | None":
        """Resolve ``pkg.symbol`` where ``pkg/__init__`` re-exports it."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = self.index.modules.get(".".join(parts[:cut]))
            if module is None:
                continue
            alias_target = module.aliases.get(parts[cut])
            if alias_target is None:
                return None
            rest = parts[cut + 1:]
            return self._resolve_dotted(".".join([alias_target] + rest))
        return None

    def _class_ctor(self, module: ModuleIndex, cls_name: str) -> str:
        info = module.classes.get(cls_name, {})
        if "__init__" in info.get("methods", []):
            return f"{module.name}.{cls_name}.__init__"
        # Chase the first indexed base with an __init__.
        for base in info.get("bases", []):
            found = self.index.find_symbol(base)
            if found is not None:
                base_module, base_cls = found
                if base_cls in base_module.classes:
                    return self._class_ctor(base_module, base_cls)
        return f"{module.name}.{cls_name}"

    def _resolve_self_method(self, module: ModuleIndex, cls_name: str, method: str) -> "str | None":
        seen: set[str] = set()
        queue = [f"{module.name}.{cls_name}"]
        while queue:
            qualified = queue.pop(0)
            if qualified in seen:
                continue
            seen.add(qualified)
            found = self.index.find_symbol(qualified)
            if found is None:
                continue
            owner, name = found
            info = owner.classes.get(name)
            if info is None:
                continue
            if method in info.get("methods", []):
                return f"{owner.name}.{name}.{method}"
            queue.extend(info.get("bases", []))
        return None

    # -- queries --------------------------------------------------------

    def node(self, qualname: str) -> "FunctionInfo | None":
        found = self.index.find_symbol(qualname)
        if found is None:
            return None
        module, _symbol = found
        local = qualname[len(module.name) + 1:]
        return module.function(local)

    def module_of(self, qualname: str) -> "ModuleIndex | None":
        found = self.index.find_symbol(qualname)
        return None if found is None else found[0]

    def reachable_from(self, roots: "list[str]") -> "list[str]":
        """Transitive closure over internal edges, BFS order, roots first."""
        seen: list[str] = []
        seen_set: set[str] = set()
        queue = list(roots)
        while queue:
            current = queue.pop(0)
            if current in seen_set:
                continue
            seen_set.add(current)
            seen.append(current)
            for callee in sorted(self.edges.get(current, ())):
                # A class-ctor edge also implies its methods may run later,
                # but only __init__ runs at the call, so only it is walked.
                if callee not in seen_set:
                    queue.append(callee)
        return seen

    def unresolved_sites(self, path_prefix: str = "") -> Iterator[tuple]:
        """(caller, op, resolution) for every ``unresolved`` direct call."""
        for caller, resolutions in sorted(self.site_resolutions.items()):
            module = self.module_of(caller)
            if module is None or not module.path.startswith(path_prefix):
                continue
            for op, resolution in resolutions:
                if resolution.kind == "unresolved":
                    yield caller, op, resolution


def build_call_graph(index: ProjectIndex) -> CallGraph:
    return CallGraph(index).build()
