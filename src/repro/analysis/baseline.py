"""Suppression-debt budget: baseline file and growth gate.

Every ``# fraclint: disable[-file]=RULE`` comment is *debt*: a site where
an invariant is waived. The baseline file records how much debt exists
per ``(path, rule)`` so CI can hold the line: a run **fails** when a
group's suppression count grows past the baseline and any suppression in
that group lacks an audit note (the trailing ``-- why`` text, or the
standalone comment lines directly above the directive — the FRL003
positivity-proof convention). Paying debt down never fails; regenerate
the baseline with ``python -m repro.analysis --write-baseline`` after an
audit to ratchet the budget.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.analysis.framework import FileContext, iter_python_files
from repro.utils.exceptions import ReproError

__all__ = [
    "BASELINE_VERSION",
    "collect_suppressions",
    "write_baseline",
    "update_baseline",
    "load_baseline",
    "check_budget",
]

BASELINE_VERSION = 1


def collect_suppressions(paths: "Iterable[Path]") -> "list[dict]":
    """Every suppression record under ``paths``, with its file attached.

    Records are ``{"path", "line", "scope", "rules", "note"}``. Files
    that fail to parse contribute no records (their FRL000 finding blocks
    the run anyway); suppression comments are still read from files that
    parse, whether or not they are library code.
    """
    records: list[dict] = []
    for file_path in iter_python_files(paths):
        try:
            ctx = FileContext.parse(file_path)
        except SyntaxError:
            continue
        for record in ctx.suppression_records():
            records.append({"path": ctx.display_path, **record})
    return sorted(records, key=lambda r: (r["path"], r["line"]))


def _group_counts(records: "list[dict]") -> "dict[str, int]":
    counts: dict[str, int] = {}
    for record in records:
        for rule in record["rules"]:
            key = f"{record['path']}::{rule}"
            counts[key] = counts.get(key, 0) + 1
    return counts


def _dump_baseline(path: "Path | str", payload: dict) -> None:
    target = Path(path)
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    except OSError as exc:
        raise ReproError(f"cannot write baseline {target}: {exc}") from exc


def write_baseline(path: "Path | str", records: "list[dict]") -> dict:
    """Serialize the current debt to ``path``; returns the payload."""
    payload = {
        "version": BASELINE_VERSION,
        "total": sum(len(r["rules"]) for r in records),
        "counts": _group_counts(records),
    }
    _dump_baseline(path, payload)
    return payload


def _group_notes(records: "list[dict]") -> "dict[str, list[str]]":
    notes: dict[str, set] = {}
    for record in records:
        if not record["note"]:
            continue
        for rule in record["rules"]:
            notes.setdefault(f"{record['path']}::{rule}", set()).add(record["note"])
    return {key: sorted(values) for key, values in notes.items()}


def update_baseline(path: "Path | str", records: "list[dict]") -> dict:
    """Regenerate ``path`` mechanically, preserving recorded audit notes.

    Counts are recomputed from the current tree (same ratchet semantics
    as :func:`write_baseline`), and the payload additionally carries a
    ``notes`` section: per group, the sorted audit notes currently in the
    tree, merged with the notes the *previous* baseline recorded for
    groups that still exist — so the justification written during an
    audit survives even after the directive that carried it is paid down
    to a smaller count. The output is deterministic: updating twice with
    an unchanged tree produces byte-identical files (the round-trip the
    tests pin).
    """
    notes = _group_notes(records)
    counts = _group_counts(records)
    target = Path(path)
    if target.exists():
        previous = load_baseline(target)
        for key, kept in previous.get("notes", {}).items():
            if key in counts:
                merged = set(notes.get(key, [])) | set(kept)
                notes[key] = sorted(merged)
    payload = {
        "version": BASELINE_VERSION,
        "total": sum(len(r["rules"]) for r in records),
        "counts": counts,
        "notes": notes,
    }
    _dump_baseline(path, payload)
    return payload


def load_baseline(path: "Path | str") -> dict:
    target = Path(path)
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ReproError(f"cannot read baseline {target}: {exc}") from exc
    except ValueError as exc:
        raise ReproError(f"baseline {target} is not valid JSON: {exc}") from exc
    if payload.get("version") != BASELINE_VERSION:
        raise ReproError(
            f"baseline {target} has version {payload.get('version')!r}; "
            f"expected {BASELINE_VERSION} — regenerate with --write-baseline"
        )
    return payload


def check_budget(baseline: dict, records: "list[dict]") -> "list[str]":
    """Problems (empty list = budget holds) for the current records.

    A ``(path, rule)`` group over its baseline count fails only when a
    suppression in that group lacks an audit note — growth justified by
    notes passes, shrinkage always passes, and un-noted debt *within*
    budget is tolerated (pre-existing). The gate therefore ratchets: new
    debt requires a written justification, old debt cannot silently grow.
    """
    base_counts = baseline.get("counts", {})
    current_counts = _group_counts(records)
    problems: list[str] = []
    for key in sorted(current_counts):
        grown_by = current_counts[key] - int(base_counts.get(key, 0))
        if grown_by <= 0:
            continue
        path, _sep, rule = key.partition("::")
        unnoted = [
            r
            for r in records
            if r["path"] == path and rule in r["rules"] and not r["note"]
        ]
        if unnoted:
            lines = ", ".join(str(r["line"]) for r in unnoted)
            problems.append(
                f"{key}: {grown_by} new suppression(s) over baseline and "
                f"un-noted suppression(s) at line(s) {lines} — every new "
                "suppression needs an audit note (`-- why`, or a comment "
                "line above)"
            )
    return problems
