"""Core machinery of ``fraclint``, the repo's self-hosted static analyzer.

The FRaC reproduction's correctness rests on invariants that no general
linter knows about: all randomness must flow through the SeedSequence
plumbing of :mod:`repro.utils.rng` (DESIGN.md §6), surprisal math must
never evaluate ``log`` of a value that could be zero or negative, learners
must honour the :class:`~repro.learners.base.BaseLearner` contract, and so
on. This module provides the pieces every checker shares:

- :class:`Violation` — one finding, formatted ``path:line:col: RULE msg``;
- :class:`FileContext` — a parsed file plus suppression-comment data and
  import-alias resolution;
- :class:`Checker` — the checker ABC, and a :func:`register` decorator
  feeding the global rule registry;
- :func:`analyze_file` / :func:`analyze_paths` — drivers used by both the
  CLI (``python -m repro.analysis``) and the test suite.

Suppressions
------------
A violation on line ``L`` is silenced by a ``# fraclint: disable=RULE``
comment on line ``L`` (comma-separate several rules, or use ``all``).
A ``# fraclint: disable-file=RULE`` comment anywhere silences the rule for
the whole file. Suppressions are meant for *audited* sites and should carry
a justification in the surrounding comment (see docs/invariants.md).
"""

from __future__ import annotations

import ast
import inspect
import io
import re
import tokenize
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Violation",
    "FileContext",
    "Checker",
    "ProjectChecker",
    "ProjectContext",
    "AnalysisResult",
    "register",
    "all_checkers",
    "get_checker",
    "explain",
    "ruleset_fingerprint",
    "analyze_file",
    "analyze_paths",
    "run_analysis",
    "iter_python_files",
]

_SUPPRESS_RE = re.compile(
    r"#\s*fraclint:\s*(?P<scope>disable|disable-file)\s*=\s*"
    r"(?P<rules>(?:[A-Za-z0-9_*]+\s*,\s*)*[A-Za-z0-9_*]+)"
)

#: Rule id reserved for files that cannot be parsed at all.
PARSE_ERROR_RULE = "FRL000"


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule violated at a location, with a human message."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def _parse_suppressions(source: str) -> "tuple[dict[int, set[str]], set[str]]":
    """Extract per-line and per-file suppression comments.

    Returns ``(line -> rules, file_rules)``; the token stream (not a regex
    over raw lines) is used so that ``#`` inside string literals cannot be
    mistaken for a comment.
    """
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            rules = {
                r.strip().upper().replace("ALL", "*")
                for r in match.group("rules").split(",")
                if r.strip()
            }
            if match.group("scope") == "disable-file":
                per_file |= rules
            else:
                per_line.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass  # unterminated constructs surface as FRL000 via ast.parse
    return per_line, per_file


def _suppression_records(source: str) -> "list[dict]":
    """Every suppression directive with its audit note, in line order.

    A record is ``{"line", "scope", "rules", "note"}``. The note is the
    text after the rule list on the directive's own comment (``-- why``),
    or — when that is empty — the contiguous standalone comment lines
    directly above the directive (the FRL003 positivity-proof convention).
    Records feed :mod:`repro.analysis.baseline`'s suppression-debt budget:
    a suppression without a note is unaudited debt.
    """
    comments: dict[int, tuple] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = (tok.string, tok.start[1])
    except tokenize.TokenError:
        return []
    lines = source.splitlines()

    def standalone_text(line: int) -> "str | None":
        """Comment text when line holds nothing but a comment."""
        entry = comments.get(line)
        if entry is None:
            return None
        text, col = entry
        if line - 1 < len(lines) and lines[line - 1][:col].strip():
            return None  # trailing comment after code
        return text.lstrip("#").strip()

    records: list[dict] = []
    for line in sorted(comments):
        text, _col = comments[line]
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = sorted(
            r.strip().upper().replace("ALL", "*")
            for r in match.group("rules").split(",")
            if r.strip()
        )
        note = text[match.end():].strip().lstrip("-—:·").strip()
        if not note:
            above: list[str] = []
            cursor = line - 1
            while cursor >= 1:
                body = standalone_text(cursor)
                if body is None or _SUPPRESS_RE.search(body or ""):
                    break
                above.append(body)
                cursor -= 1
            note = " ".join(reversed(above)).strip()
        records.append(
            {
                "line": line,
                "scope": "file" if match.group("scope") == "disable-file" else "line",
                "rules": rules,
                "note": note,
            }
        )
    return records


def _display(path: Path) -> str:
    """Path as reported in violations: cwd-relative when possible."""
    try:
        return Path(path).resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return Path(path).as_posix()


def _infer_is_library(path: Path) -> bool:
    """Library code gets the strict rules; tests and fixtures do not."""
    parts = {p.lower() for p in path.parts}
    if parts & {"tests", "test", "examples", "benchmarks", "fixtures"}:
        return False
    name = path.name
    return not (name.startswith("test_") or name == "conftest.py")


@dataclass
class FileContext:
    """A parsed source file plus everything checkers need to inspect it."""

    path: Path
    source: str
    tree: ast.Module
    is_library: bool
    line_suppressions: dict = field(default_factory=dict)
    file_suppressions: set = field(default_factory=set)
    #: import alias -> fully dotted module/object path (e.g. ``np`` ->
    #: ``numpy``, ``npr`` -> ``numpy.random``, ``log`` -> ``math.log``).
    aliases: dict = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, *, force_library: "bool | None" = None) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        per_line, per_file = _parse_suppressions(source)
        ctx = cls(
            path=path,
            source=source,
            tree=tree,
            is_library=_infer_is_library(path) if force_library is None else force_library,
            line_suppressions=per_line,
            file_suppressions=per_file,
        )
        ctx.aliases = _collect_aliases(tree)
        return ctx

    @property
    def display_path(self) -> str:
        return _display(self.path)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if {"*", rule} & self.file_suppressions:
            return True
        at_line = self.line_suppressions.get(line, set())
        return bool({"*", rule} & at_line)

    def suppression_records(self) -> "list[dict]":
        """Suppression directives with audit notes (see the module doc)."""
        return _suppression_records(self.source)

    def resolve(self, node: ast.AST) -> "str | None":
        """Fully dotted name of an expression, unfolding import aliases.

        ``np.random.seed`` resolves to ``numpy.random.seed`` when the file
        did ``import numpy as np``; returns ``None`` for non-name shapes
        (subscripts, calls, literals).
        """
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        head = self.aliases.get(cur.id, cur.id)
        parts.append(head)
        return ".".join(reversed(parts))

    def violation(self, rule: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


def _collect_aliases(tree: ast.Module) -> dict:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname is None and "." in alias.name:
                    # ``import numpy.random`` binds ``numpy``; record the
                    # full path too so ``numpy.random.X`` resolves as-is.
                    aliases[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


class ProjectContext:
    """Whole-program view handed to :class:`ProjectChecker` rules.

    Built once per :func:`run_analysis` invocation from every scanned
    file's :class:`~repro.analysis.index.ModuleIndex`, with the resolved
    :class:`~repro.analysis.callgraph.CallGraph` constructed lazily (rules
    that only need the import graph never pay for call resolution).
    """

    def __init__(self, index) -> None:
        self.index = index
        self._graph = None
        self._perf = None
        self._concurrency = None

    @property
    def graph(self):
        if self._graph is None:
            from repro.analysis.callgraph import build_call_graph

            self._graph = build_call_graph(self.index)
        return self._graph

    @property
    def perf(self):
        """FRL015–FRL019 findings, computed once per context.

        The shape fixed point and the hooked replays are shared by all
        five performance rules and by the optimization ledger, so the
        pass runs at most once however many consumers ask.
        """
        if self._perf is None:
            from repro.analysis.perf import analyze_performance

            self._perf = analyze_performance(self)
        return self._perf

    @property
    def concurrency(self):
        """The FRL021–FRL025 happens-before model, computed once.

        Work roots, worker reachability, mutable globals, the lock
        inventory, and the lock-order graph are shared by all five
        concurrency rules, so the model builds at most once per context.
        """
        if self._concurrency is None:
            from repro.analysis.concurrency import build_concurrency_model

            self._concurrency = build_concurrency_model(self)
        return self._concurrency


@dataclass
class AnalysisResult:
    """Everything one :func:`run_analysis` run produced."""

    violations: list
    n_files: int
    #: ``files``, ``modules_reindexed`` (parsed this run, i.e. cache
    #: misses), ``cache_hits``.
    stats: dict
    project: "ProjectContext | None" = None


class Checker(ABC):
    """One rule. Subclasses are registered via :func:`register`."""

    #: Stable rule id, e.g. ``"FRL001"``. Unique across the registry.
    rule: str = ""
    #: Short kebab-case name used in docs and ``--list-rules``.
    name: str = ""
    #: One-line description of the enforced invariant.
    description: str = ""
    #: When True the rule only applies to library code (``src/``), not to
    #: tests/examples/benchmarks. See :func:`_infer_is_library`.
    library_only: bool = True

    @abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield violations found in ``ctx``."""

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.is_library or not self.library_only


class ProjectChecker(Checker):
    """A whole-program rule: runs once over the :class:`ProjectContext`.

    Subclasses implement :meth:`check_project`; the per-file :meth:`check`
    hook is a no-op so project rules cost nothing under
    :func:`analyze_file` (which by design has no cross-module view).
    Violations are still suppressible with the usual line/file comments —
    :func:`run_analysis` filters them through the indexed suppressions of
    the module each violation is anchored in.
    """

    @abstractmethod
    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        """Yield violations found across the indexed project."""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())


_REGISTRY: dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a :class:`Checker` subclass to the registry."""
    if not cls.rule or not cls.rule.startswith("FRL"):
        raise ValueError(f"checker {cls.__name__} must define a FRLxxx rule id")
    if cls.rule in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule}")
    _REGISTRY[cls.rule] = cls
    return cls


def all_checkers() -> "list[Checker]":
    """Fresh instances of every registered checker, sorted by rule id."""
    _ensure_builtin_checkers()
    return [_REGISTRY[rule]() for rule in sorted(_REGISTRY)]


def get_checker(rule: str) -> Checker:
    _ensure_builtin_checkers()
    # The registry is populated once per interpreter by import-time
    # @register decorators (append-only, and _ensure_builtin_checkers ran
    # on the line above), so a process-mode scan worker reads its own
    # fully-initialized copy and thread-mode readers see a dict that no
    # longer changes.
    return _REGISTRY[rule]()  # fraclint: disable=FRL021 — import-time-frozen registry, initialized before any read


def _ensure_builtin_checkers() -> None:
    # Import for the side effect of running the @register decorators.
    from repro.analysis import checkers  # noqa: F401


def analyze_file(
    path: Path,
    *,
    checkers: "Sequence[Checker] | None" = None,
    force_library: "bool | None" = None,
) -> "list[Violation]":
    """All (unsuppressed) violations in one file."""
    path = Path(path)
    try:
        ctx = FileContext.parse(path, force_library=force_library)
    except SyntaxError as exc:
        return [
            Violation(
                path=path.as_posix(),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule=PARSE_ERROR_RULE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    active = list(checkers) if checkers is not None else all_checkers()
    found: list[Violation] = []
    for checker in active:
        if not checker.applies_to(ctx):
            continue
        for violation in checker.check(ctx):
            if not ctx.is_suppressed(violation.rule, violation.line):
                found.append(violation)
    return sorted(found)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic stream of ``*.py``.

    ``fixtures`` directories are skipped during expansion: they hold
    *intentionally* violating code for the checker tests. The skip applies
    to the path *below* each given root, so passing a fixture tree (or
    file) explicitly still scans it.
    """
    for path in paths:
        path = Path(path)
        if path.is_dir():
            found = []
            for p in path.rglob("*.py"):
                rel_parts = p.relative_to(path).parts
                if "__pycache__" in rel_parts or "fixtures" in rel_parts:
                    continue
                if any(part.startswith(".") for part in rel_parts):
                    continue
                found.append(p)
            yield from sorted(found)
        elif path.suffix == ".py":
            yield path


def ruleset_fingerprint(checkers: "Sequence[Checker]") -> str:
    """Cache key component: which file-local rules produced the entries."""
    rules = sorted(c.rule for c in checkers if not isinstance(c, ProjectChecker))
    return "file:" + ",".join(rules)


def _scan_one(item: dict) -> dict:
    """Parse, file-check, and index one file (top-level: picklable).

    ``item`` is ``{"path", "force_library", "rules"}``; the result carries
    the serialized :class:`~repro.analysis.index.ModuleIndex` and the
    file-local violations as dicts, so it crosses process boundaries and
    feeds the on-disk cache unchanged.
    """
    from repro.analysis.index import ModuleIndex, content_hash, index_module, module_name_for

    path = Path(item["path"])
    force_library = item["force_library"]
    checkers = [get_checker(rule) for rule in item["rules"]]
    try:
        ctx = FileContext.parse(path, force_library=force_library)
    except SyntaxError as exc:
        is_library = _infer_is_library(path) if force_library is None else force_library
        broken = ModuleIndex(
            name=module_name_for(path),
            path=_display(path),
            sha256=content_hash(path.read_bytes()),
            is_library=is_library,
            parse_error=str(exc.msg),
        )
        violation = Violation(
            path=_display(path),
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule=PARSE_ERROR_RULE,
            message=f"file does not parse: {exc.msg}",
        )
        return {"module": broken.to_dict(), "violations": [violation.to_dict()]}
    found: list[Violation] = []
    for checker in checkers:
        if not checker.applies_to(ctx):
            continue
        for violation in checker.check(ctx):
            if not ctx.is_suppressed(violation.rule, violation.line):
                found.append(violation)
    module = index_module(ctx)
    return {
        "module": module.to_dict(),
        "violations": [v.to_dict() for v in sorted(found)],
    }


def run_analysis(
    paths: Iterable[Path],
    *,
    checkers: "Sequence[Checker] | None" = None,
    cache_path: "Path | str | None" = None,
    jobs: int = 0,
    force_library: "bool | None" = None,
) -> AnalysisResult:
    """Whole-program analysis over files and directories.

    File-local rules run per file (cached by content hash when
    ``cache_path`` is given; parallelized over files via the repo's own
    :func:`repro.parallel.executor.run_tasks` when ``jobs > 1``), then
    every :class:`ProjectChecker` runs once over the assembled
    :class:`ProjectContext`. ``stats["modules_reindexed"]`` counts files
    actually re-parsed this run — an unchanged tree under a warm cache
    re-indexes zero modules.
    """
    from repro.analysis.index import IndexCache, ModuleIndex, ProjectIndex, content_hash

    active = list(checkers) if checkers is not None else all_checkers()
    file_rules = [c.rule for c in active if not isinstance(c, ProjectChecker)]
    project_checkers = [c for c in active if isinstance(c, ProjectChecker)]

    cache = None
    if cache_path is not None:
        cache = IndexCache(cache_path, ruleset=ruleset_fingerprint(active))

    files = list(iter_python_files(paths))
    violations: list[Violation] = []
    project = ProjectIndex()
    pending: list[dict] = []
    for file_path in files:
        item = {
            "path": str(file_path),
            "force_library": force_library,
            "rules": file_rules,
        }
        if cache is not None:
            cached = cache.lookup(_display(file_path), content_hash(file_path.read_bytes()))
            if cached is not None:
                module, cached_violations = cached
                project.add(module)
                violations.extend(Violation(**v) for v in cached_violations)
                continue
        pending.append(item)

    if len(pending) > 1 and jobs > 1:
        from repro.parallel.executor import ExecutionConfig, run_tasks

        results = run_tasks(
            _scan_one, pending, config=ExecutionConfig(mode="process", n_workers=jobs)
        )
    else:
        results = [_scan_one(item) for item in pending]

    for result in results:
        module = ModuleIndex.from_dict(result["module"])
        project.add(module)
        violations.extend(Violation(**v) for v in result["violations"])
        if cache is not None:
            cache.store(module, result["violations"])

    if cache is not None:
        cache.prune(_display(Path(p)) for p in files)
        cache.save()

    context = ProjectContext(project)
    for checker in project_checkers:
        for violation in checker.check_project(context):
            module = project.by_path(violation.path)
            if module is not None and module.is_suppressed(violation.rule, violation.line):
                continue
            violations.append(violation)

    stats = {
        "files": len(files),
        "modules_reindexed": len(pending),
        "cache_hits": cache.hits if cache is not None else 0,
    }
    return AnalysisResult(
        violations=sorted(violations), n_files=len(files), stats=stats, project=context
    )


def analyze_paths(
    paths: Iterable[Path],
    *,
    checkers: "Sequence[Checker] | None" = None,
) -> "tuple[list[Violation], int]":
    """Run over files and directories; returns ``(violations, n_files)``."""
    result = run_analysis(paths, checkers=checkers)
    return result.violations, result.n_files


#: Docstring sections every checker must provide for ``--explain``.
EXPLAIN_SECTIONS = ("Invariant:", "Example violation:", "Fix:")


def explain(rule: str) -> str:
    """Human-readable rule card: invariant, example violation, fix.

    Sourced from the checker class docstring, which must contain the
    :data:`EXPLAIN_SECTIONS` headers (enforced here and in the tests so a
    new rule cannot ship without them).
    """
    checker = get_checker(rule)
    doc = inspect.cleandoc(checker.__class__.__doc__ or "")
    missing = [s for s in EXPLAIN_SECTIONS if s not in doc]
    if missing:
        raise ValueError(
            f"{rule} docstring is missing --explain section(s): {', '.join(missing)}"
        )
    scope = "library code" if checker.library_only else "all scanned code"
    header = f"{checker.rule} {checker.name} (applies to {scope})"
    body = doc.split("\n", 1)[1].strip() if "\n" in doc else ""
    return f"{header}\n{'=' * len(header)}\n{checker.description}\n\n{body}"
