"""Core machinery of ``fraclint``, the repo's self-hosted static analyzer.

The FRaC reproduction's correctness rests on invariants that no general
linter knows about: all randomness must flow through the SeedSequence
plumbing of :mod:`repro.utils.rng` (DESIGN.md §6), surprisal math must
never evaluate ``log`` of a value that could be zero or negative, learners
must honour the :class:`~repro.learners.base.BaseLearner` contract, and so
on. This module provides the pieces every checker shares:

- :class:`Violation` — one finding, formatted ``path:line:col: RULE msg``;
- :class:`FileContext` — a parsed file plus suppression-comment data and
  import-alias resolution;
- :class:`Checker` — the checker ABC, and a :func:`register` decorator
  feeding the global rule registry;
- :func:`analyze_file` / :func:`analyze_paths` — drivers used by both the
  CLI (``python -m repro.analysis``) and the test suite.

Suppressions
------------
A violation on line ``L`` is silenced by a ``# fraclint: disable=RULE``
comment on line ``L`` (comma-separate several rules, or use ``all``).
A ``# fraclint: disable-file=RULE`` comment anywhere silences the rule for
the whole file. Suppressions are meant for *audited* sites and should carry
a justification in the surrounding comment (see docs/invariants.md).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Violation",
    "FileContext",
    "Checker",
    "register",
    "all_checkers",
    "get_checker",
    "analyze_file",
    "analyze_paths",
    "iter_python_files",
]

_SUPPRESS_RE = re.compile(
    r"#\s*fraclint:\s*(?P<scope>disable|disable-file)\s*=\s*(?P<rules>[A-Za-z0-9_,\s*]+)"
)

#: Rule id reserved for files that cannot be parsed at all.
PARSE_ERROR_RULE = "FRL000"


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule violated at a location, with a human message."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def _parse_suppressions(source: str) -> "tuple[dict[int, set[str]], set[str]]":
    """Extract per-line and per-file suppression comments.

    Returns ``(line -> rules, file_rules)``; the token stream (not a regex
    over raw lines) is used so that ``#`` inside string literals cannot be
    mistaken for a comment.
    """
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            rules = {
                r.strip().upper().replace("ALL", "*")
                for r in match.group("rules").split(",")
                if r.strip()
            }
            if match.group("scope") == "disable-file":
                per_file |= rules
            else:
                per_line.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass  # unterminated constructs surface as FRL000 via ast.parse
    return per_line, per_file


def _infer_is_library(path: Path) -> bool:
    """Library code gets the strict rules; tests and fixtures do not."""
    parts = {p.lower() for p in path.parts}
    if parts & {"tests", "test", "examples", "benchmarks", "fixtures"}:
        return False
    name = path.name
    return not (name.startswith("test_") or name == "conftest.py")


@dataclass
class FileContext:
    """A parsed source file plus everything checkers need to inspect it."""

    path: Path
    source: str
    tree: ast.Module
    is_library: bool
    line_suppressions: dict = field(default_factory=dict)
    file_suppressions: set = field(default_factory=set)
    #: import alias -> fully dotted module/object path (e.g. ``np`` ->
    #: ``numpy``, ``npr`` -> ``numpy.random``, ``log`` -> ``math.log``).
    aliases: dict = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, *, force_library: "bool | None" = None) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        per_line, per_file = _parse_suppressions(source)
        ctx = cls(
            path=path,
            source=source,
            tree=tree,
            is_library=_infer_is_library(path) if force_library is None else force_library,
            line_suppressions=per_line,
            file_suppressions=per_file,
        )
        ctx.aliases = _collect_aliases(tree)
        return ctx

    @property
    def display_path(self) -> str:
        try:
            return self.path.resolve().relative_to(Path.cwd()).as_posix()
        except ValueError:
            return self.path.as_posix()

    def is_suppressed(self, rule: str, line: int) -> bool:
        if {"*", rule} & self.file_suppressions:
            return True
        at_line = self.line_suppressions.get(line, set())
        return bool({"*", rule} & at_line)

    def resolve(self, node: ast.AST) -> "str | None":
        """Fully dotted name of an expression, unfolding import aliases.

        ``np.random.seed`` resolves to ``numpy.random.seed`` when the file
        did ``import numpy as np``; returns ``None`` for non-name shapes
        (subscripts, calls, literals).
        """
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        head = self.aliases.get(cur.id, cur.id)
        parts.append(head)
        return ".".join(reversed(parts))

    def violation(self, rule: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


def _collect_aliases(tree: ast.Module) -> dict:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname is None and "." in alias.name:
                    # ``import numpy.random`` binds ``numpy``; record the
                    # full path too so ``numpy.random.X`` resolves as-is.
                    aliases[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


class Checker(ABC):
    """One rule. Subclasses are registered via :func:`register`."""

    #: Stable rule id, e.g. ``"FRL001"``. Unique across the registry.
    rule: str = ""
    #: Short kebab-case name used in docs and ``--list-rules``.
    name: str = ""
    #: One-line description of the enforced invariant.
    description: str = ""
    #: When True the rule only applies to library code (``src/``), not to
    #: tests/examples/benchmarks. See :func:`_infer_is_library`.
    library_only: bool = True

    @abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield violations found in ``ctx``."""

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.is_library or not self.library_only


_REGISTRY: dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a :class:`Checker` subclass to the registry."""
    if not cls.rule or not cls.rule.startswith("FRL"):
        raise ValueError(f"checker {cls.__name__} must define a FRLxxx rule id")
    if cls.rule in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule}")
    _REGISTRY[cls.rule] = cls
    return cls


def all_checkers() -> "list[Checker]":
    """Fresh instances of every registered checker, sorted by rule id."""
    _ensure_builtin_checkers()
    return [_REGISTRY[rule]() for rule in sorted(_REGISTRY)]


def get_checker(rule: str) -> Checker:
    _ensure_builtin_checkers()
    return _REGISTRY[rule]()


def _ensure_builtin_checkers() -> None:
    # Import for the side effect of running the @register decorators.
    from repro.analysis import checkers  # noqa: F401


def analyze_file(
    path: Path,
    *,
    checkers: "Sequence[Checker] | None" = None,
    force_library: "bool | None" = None,
) -> "list[Violation]":
    """All (unsuppressed) violations in one file."""
    path = Path(path)
    try:
        ctx = FileContext.parse(path, force_library=force_library)
    except SyntaxError as exc:
        return [
            Violation(
                path=path.as_posix(),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule=PARSE_ERROR_RULE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    active = list(checkers) if checkers is not None else all_checkers()
    found: list[Violation] = []
    for checker in active:
        if not checker.applies_to(ctx):
            continue
        for violation in checker.check(ctx):
            if not ctx.is_suppressed(violation.rule, violation.line):
                found.append(violation)
    return sorted(found)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic stream of ``*.py``.

    ``fixtures`` directories are skipped during expansion: they hold
    *intentionally* violating code for the checker tests. Passing a fixture
    file explicitly (or via :func:`analyze_file`) still scans it.
    """
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
                and "fixtures" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
            )
        elif path.suffix == ".py":
            yield path


def analyze_paths(
    paths: Iterable[Path],
    *,
    checkers: "Sequence[Checker] | None" = None,
) -> "tuple[list[Violation], int]":
    """Run over files and directories; returns ``(violations, n_files)``."""
    active = list(checkers) if checkers is not None else all_checkers()
    violations: list[Violation] = []
    n_files = 0
    for file_path in iter_python_files(paths):
        n_files += 1
        violations.extend(analyze_file(file_path, checkers=active))
    return sorted(violations), n_files
