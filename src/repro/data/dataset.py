"""The :class:`Dataset` container: a data matrix plus its schema and labels.

A data set in this library mirrors the anomaly-detection setup of the FRaC
and CSAX papers: samples are either *normal* or *anomalous* (labels are used
only for building train/test replicates and for AUC evaluation — never for
training, which sees normals only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.data.schema import FeatureSchema
from repro.utils.exceptions import DataError


@dataclass(frozen=True)
class Dataset:
    """An anomaly-detection data set.

    Attributes
    ----------
    x:
        ``(n_samples, n_features)`` float64 matrix. Categorical features are
        stored as integer codes; ``NaN`` encodes a missing value.
    schema:
        Per-column feature descriptions.
    is_anomaly:
        ``(n_samples,)`` boolean array; ``True`` marks anomalous samples.
    name:
        Data-set identifier (e.g. ``"biomarkers"``).
    """

    x: np.ndarray
    schema: FeatureSchema
    is_anomaly: np.ndarray
    name: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        x = np.ascontiguousarray(np.asarray(self.x, dtype=np.float64))
        object.__setattr__(self, "x", x)
        labels = np.asarray(self.is_anomaly, dtype=bool)
        object.__setattr__(self, "is_anomaly", labels)
        if x.ndim != 2:
            raise DataError(f"data matrix must be 2-D, got shape {x.shape}")
        if labels.shape != (x.shape[0],):
            raise DataError(
                f"labels shape {labels.shape} does not match {x.shape[0]} samples"
            )
        self.schema.validate_matrix(x)

    # -- basic geometry -----------------------------------------------------
    @property
    def n_samples(self) -> int:
        return self.x.shape[0]

    @property
    def n_features(self) -> int:
        return self.x.shape[1]

    @property
    def n_normal(self) -> int:
        return int((~self.is_anomaly).sum())

    @property
    def n_anomaly(self) -> int:
        return int(self.is_anomaly.sum())

    @property
    def nbytes(self) -> int:
        """Bytes held by the data matrix (used by the resource model)."""
        return int(self.x.nbytes)

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}: {self.n_samples} samples "
            f"({self.n_normal} normal / {self.n_anomaly} anomaly), "
            f"{self.n_features} features)"
        )

    # -- slicing --------------------------------------------------------------
    def select_samples(self, indices: Sequence[int] | np.ndarray) -> "Dataset":
        """New data set restricted to the given sample rows."""
        idx = np.asarray(indices, dtype=np.intp)
        return Dataset(
            self.x[idx], self.schema, self.is_anomaly[idx], self.name, dict(self.metadata)
        )

    def select_features(self, indices: Sequence[int] | np.ndarray) -> "Dataset":
        """New data set restricted to (and reordered by) the given columns."""
        idx = np.asarray(indices, dtype=np.intp)
        return Dataset(
            self.x[:, idx],
            self.schema.subset(idx),
            self.is_anomaly,
            self.name,
            dict(self.metadata),
        )

    def normals(self) -> "Dataset":
        """The normal-only subset (what FRaC trains on)."""
        return self.select_samples(np.flatnonzero(~self.is_anomaly))

    def anomalies(self) -> "Dataset":
        return self.select_samples(np.flatnonzero(self.is_anomaly))


@dataclass(frozen=True)
class Replicate:
    """One train/test split in the paper's replicate protocol.

    ``x_train`` contains normal samples only; ``x_test`` mixes held-out
    normals with all anomalies, with ``y_test`` giving the anomaly labels.
    """

    x_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    schema: FeatureSchema
    name: str = ""
    index: int = 0

    @property
    def n_train(self) -> int:
        return self.x_train.shape[0]

    @property
    def n_test(self) -> int:
        return self.x_test.shape[0]

    @property
    def n_features(self) -> int:
        return self.x_train.shape[1]

    def __repr__(self) -> str:
        return (
            f"Replicate({self.name!r}#{self.index}: {self.n_train} train, "
            f"{self.n_test} test, {self.n_features} features)"
        )
