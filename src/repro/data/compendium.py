"""Registry of the paper's eight data sets (Table I), with scaling.

The registry records the *exact* geometry the paper reports (features,
normal samples, anomaly samples) together with a synthetic generator
configuration per data set, chosen so that (at moderate scale) full-FRaC
AUCs land near the paper's Table II values and the per-data-set quirks the
paper discusses are reproduced by construction:

- ``autism`` plants no signal (the paper's full-FRaC AUC is 0.50);
- ``schizophrenia`` plants an ancestry confound on top-entropy markers
  (the paper's entropy-filter AUC is ~1.0) plus a small true disease
  signal (the paper's random-ensemble AUC is 0.86 and its top models are
  enriched for known schizophrenia genes);
- ``hematopoiesis`` concentrates variance on relevant features (entropy
  filtering is the best variant there);
- ``ethnic`` does the opposite (entropy filtering degrades it).

``scale`` shrinks the feature dimension (sample counts are kept at paper
values by default) so the full study runs on a laptop; fractions-of-full
metrics are ratio quantities and survive this scaling (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.dataset import Dataset
from repro.data.replicates import Replicate, fixed_split_replicate, make_replicates
from repro.data.synthetic import (
    ExpressionConfig,
    SNPConfig,
    make_expression_dataset,
    make_snp_dataset,
)
from repro.utils.exceptions import DataError
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class CompendiumEntry:
    """One row of Table I plus its synthetic-generator recipe."""

    name: str
    kind: str  # "expression" | "snp"
    paper_features: int
    paper_normal: int
    paper_anomaly: int
    paper_full_auc: "float | None"  # Table II mean AUC (None: not runnable)
    builder: Callable[["CompendiumEntry", float, float, np.random.Generator], Dataset]

    def load(
        self,
        *,
        scale: float = 1.0,
        sample_scale: float = 1.0,
        rng: "int | np.random.Generator | None" = None,
    ) -> Dataset:
        """Instantiate the data set at the given feature/sample scale."""
        if scale <= 0 or sample_scale <= 0:
            raise DataError(f"scales must be positive; got {scale}, {sample_scale}")
        return self.builder(self, scale, sample_scale, as_generator(rng))


def _scaled(count: int, scale: float, floor: int) -> int:
    return max(floor, int(round(count * scale)))


def _expression_builder(
    *,
    disrupt_fraction: float,
    entropy_bias: float = 1.0,
    n_modules: int = 3,
    module_coverage: float = 0.75,
    loading: float = 1.0,
    noise_sd: float = 0.5,
):
    """Make a builder closure for an expression entry.

    ``module_coverage`` is the fraction of features that belong to modules;
    the paper argues random filtering works when the signal is "strong and
    diffuse", which large coverage provides. Modules are few and large so
    that a p = 0.05 filter still keeps several features per module even at
    reduced scale — real co-expression modules span hundreds of genes, and
    the variants' AUC-preservation property depends on
    ``module_size * p >> 1``.
    """

    def build(
        entry: CompendiumEntry, scale: float, sample_scale: float, gen: np.random.Generator
    ) -> Dataset:
        n_features = _scaled(entry.paper_features, scale, 32)
        module_size = max(4, int(round(module_coverage * n_features / n_modules)))
        # NS separation grows like disrupt_fraction * sqrt(n_features)
        # (signal terms accumulate linearly, noise like sqrt(f)), so the
        # planted fraction is scaled by 1/sqrt(f / f_calibration) to keep
        # the full-FRaC AUC near its Table II target at *any* scale. The
        # recorded disrupt_fraction values were calibrated at scale 1/128.
        calib_features = max(32, round(entry.paper_features / 128))
        disrupt = min(1.0, disrupt_fraction * np.sqrt(calib_features / n_features))
        cfg = ExpressionConfig(
            n_features=n_features,
            n_normal=_scaled(entry.paper_normal, sample_scale, 12),
            n_anomaly=_scaled(entry.paper_anomaly, sample_scale, 5),
            n_modules=n_modules,
            module_size=module_size,
            loading=loading,
            noise_sd=noise_sd,
            disrupt_fraction=disrupt,
            entropy_bias=entropy_bias,
            name=entry.name,
        )
        return make_expression_dataset(cfg, gen)

    return build


def _snp_builder(
    *,
    relevant_coverage: float = 0.0,
    ancestry_coverage: float = 0.0,
    background_drift: float = 0.0,
    block_size: int = 8,
    n_haplotypes: int = 4,
):
    def build(
        entry: CompendiumEntry, scale: float, sample_scale: float, gen: np.random.Generator
    ) -> Dataset:
        n_features = _scaled(entry.paper_features, scale, 64)
        n_blocks = n_features // block_size
        cfg = SNPConfig(
            n_features=n_features,
            n_normal=_scaled(entry.paper_normal, sample_scale, 20),
            n_anomaly=_scaled(entry.paper_anomaly, sample_scale, 8),
            block_size=block_size,
            n_haplotypes=n_haplotypes,
            relevant_blocks=int(round(relevant_coverage * n_blocks)),
            ancestry_blocks=int(round(ancestry_coverage * n_blocks)),
            background_drift=background_drift,
            name=entry.name,
        )
        return make_snp_dataset(cfg, gen)

    return build


#: The eight data sets of Table I, keyed by the paper's names.
COMPENDIUM: dict[str, CompendiumEntry] = {
    e.name: e
    for e in [
        # disrupt_fraction values are calibrated so that full-FRaC AUC at
        # the default bench scale (1/64 of paper features, paper sample
        # counts, linear-SVR engine) lands near the paper's Table II means;
        # the builder's sqrt(features) adaptation keeps them roughly on
        # target at other scales.
        CompendiumEntry(
            "breast.basal", "expression", 3167, 56, 19, 0.73,
            _expression_builder(disrupt_fraction=0.19),
        ),
        CompendiumEntry(
            "biomarkers", "expression", 19739, 74, 53, 0.88,
            _expression_builder(disrupt_fraction=0.085),
        ),
        CompendiumEntry(
            "ethnic", "expression", 19739, 95, 96, 0.71,
            _expression_builder(disrupt_fraction=0.028, entropy_bias=0.55),
        ),
        CompendiumEntry(
            "bild", "expression", 20607, 48, 7, 0.84,
            _expression_builder(disrupt_fraction=0.128),
        ),
        CompendiumEntry(
            "smokers2", "expression", 19739, 40, 39, 0.66,
            _expression_builder(disrupt_fraction=0.055),
        ),
        CompendiumEntry(
            "hematopoiesis", "expression", 13322, 97, 91, 0.88,
            _expression_builder(disrupt_fraction=0.12, entropy_bias=1.8),
        ),
        CompendiumEntry(
            "autism", "snp", 7267, 317, 228, 0.50,
            _snp_builder(relevant_coverage=0.0, ancestry_coverage=0.0),
        ),
        CompendiumEntry(
            "schizophrenia", "snp", 171763, 280, 54, None,
            # Coverages/drift calibrated so Table V reproduces: entropy
            # filter AUC ~ 1.0 (strong ancestry markers), random ensembles
            # ~ 0.86 (diluted signal), JL weak but rising with dimension
            # (the diffuse background drift only a projection aggregates).
            _snp_builder(
                relevant_coverage=0.01,
                ancestry_coverage=0.04,
                background_drift=0.3,
            ),
        ),
    ]
}

EXPRESSION_DATASETS = tuple(n for n, e in COMPENDIUM.items() if e.kind == "expression")
SNP_DATASETS = tuple(n for n, e in COMPENDIUM.items() if e.kind == "snp")


def load_dataset(
    name: str,
    *,
    scale: float = 1.0,
    sample_scale: float = 1.0,
    rng: "int | np.random.Generator | None" = None,
) -> Dataset:
    """Instantiate a compendium data set by its paper name."""
    try:
        entry = COMPENDIUM[name]
    except KeyError:
        raise DataError(
            f"unknown data set {name!r}; available: {sorted(COMPENDIUM)}"
        ) from None
    return entry.load(scale=scale, sample_scale=sample_scale, rng=rng)


def load_replicates(
    name: str,
    n_replicates: int = 5,
    *,
    scale: float = 1.0,
    sample_scale: float = 1.0,
    rng: "int | np.random.Generator | None" = None,
) -> list[Replicate]:
    """Data set -> the paper's replicate protocol (§III-A).

    Every data set but schizophrenia gets ``n_replicates`` random 2/3-normal
    splits; schizophrenia gets its single fixed split (270 training normals,
    10 held-out normals + all anomalies testing, scaled by ``sample_scale``).
    """
    gen = as_generator(rng)
    dataset = load_dataset(name, scale=scale, sample_scale=sample_scale, rng=gen)
    if name == "schizophrenia":
        return [schizophrenia_split(dataset)]
    return make_replicates(dataset, n_replicates, rng=gen)


def schizophrenia_split(dataset: Dataset) -> Replicate:
    """The paper's fixed schizophrenia split.

    Of the normal samples, all but 10 (the stand-in for the 270 HapMap
    GSE5173 samples) train; the final 10 normals (GSE21597) plus every
    anomalous sample (GSE12714) test.
    """
    normal_idx = np.flatnonzero(~dataset.is_anomaly)
    n_heldout = min(10, max(1, len(normal_idx) // 28))
    train = dataset.select_samples(normal_idx[:-n_heldout])
    test_idx = np.concatenate(
        [normal_idx[-n_heldout:], np.flatnonzero(dataset.is_anomaly)]
    )
    test = dataset.select_samples(test_idx)
    return fixed_split_replicate(train, test, name=dataset.name)


def table1_rows(
    *, scale: float = 1.0, sample_scale: float = 1.0
) -> list[dict[str, "int | str"]]:
    """Rows of Table I: per-data-set feature and sample counts.

    With ``scale=sample_scale=1`` these are exactly the paper's numbers;
    smaller scales report the geometry actually instantiated by
    :func:`load_dataset` at that scale.
    """
    rows = []
    for entry in COMPENDIUM.values():
        rows.append(
            {
                "data set": entry.name,
                "features": _scaled(entry.paper_features, scale, 64 if entry.kind == "snp" else 32),
                "normal": _scaled(entry.paper_normal, sample_scale, 20 if entry.kind == "snp" else 12),
                "anomaly": _scaled(entry.paper_anomaly, sample_scale, 8 if entry.kind == "snp" else 5),
            }
        )
    return rows
