"""Feature schemas for mixed real/categorical data.

FRaC (Noto et al. 2012) is defined over data that is "real, categorical, or
mixed". Gene-expression data sets are all-real; SNP data sets are all-ternary
categorical (homozygous major / heterozygous / homozygous minor). A
:class:`FeatureSchema` records, per column of the data matrix, whether the
feature is real-valued or categorical and, if categorical, its arity.

Categorical values are stored in the data matrix as integer *codes*
``0..arity-1`` (held in a float64 matrix; ``NaN`` encodes a missing value for
either kind).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.utils.exceptions import SchemaError


class FeatureKind(Enum):
    """The two feature kinds FRaC distinguishes."""

    REAL = "real"
    CATEGORICAL = "categorical"


@dataclass(frozen=True)
class FeatureSpec:
    """Description of a single feature.

    Parameters
    ----------
    kind:
        Whether the feature is real-valued or categorical.
    arity:
        Number of categories for a categorical feature; ``0`` for real
        features. Categorical features must have arity >= 2.
    name:
        Optional human-readable name (gene symbol, rsID...).
    """

    kind: FeatureKind
    arity: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind is FeatureKind.REAL and self.arity != 0:
            raise SchemaError(f"real feature {self.name!r} must have arity 0, got {self.arity}")
        if self.kind is FeatureKind.CATEGORICAL and self.arity < 2:
            raise SchemaError(
                f"categorical feature {self.name!r} must have arity >= 2, got {self.arity}"
            )

    @property
    def is_real(self) -> bool:
        return self.kind is FeatureKind.REAL

    @property
    def is_categorical(self) -> bool:
        return self.kind is FeatureKind.CATEGORICAL

    @property
    def onehot_width(self) -> int:
        """Width this feature occupies after 1-hot encoding (Fig. 2)."""
        return self.arity if self.is_categorical else 1


class FeatureSchema:
    """An ordered collection of :class:`FeatureSpec`, one per data column."""

    def __init__(self, specs: Iterable[FeatureSpec]):
        self._specs: tuple[FeatureSpec, ...] = tuple(specs)
        self._real_idx = np.array(
            [i for i, s in enumerate(self._specs) if s.is_real], dtype=np.intp
        )
        self._cat_idx = np.array(
            [i for i, s in enumerate(self._specs) if s.is_categorical], dtype=np.intp
        )

    # -- constructors -----------------------------------------------------
    @classmethod
    def all_real(cls, n_features: int, names: Sequence[str] | None = None) -> "FeatureSchema":
        """Schema for an all-real data set (e.g. gene expression)."""
        names = names if names is not None else [f"f{i}" for i in range(n_features)]
        if len(names) != n_features:
            raise SchemaError(f"got {len(names)} names for {n_features} features")
        return cls(FeatureSpec(FeatureKind.REAL, name=n) for n in names)

    @classmethod
    def all_categorical(
        cls, n_features: int, arity: int = 3, names: Sequence[str] | None = None
    ) -> "FeatureSchema":
        """Schema for an all-categorical data set (e.g. ternary SNPs)."""
        names = names if names is not None else [f"snp{i}" for i in range(n_features)]
        if len(names) != n_features:
            raise SchemaError(f"got {len(names)} names for {n_features} features")
        return cls(FeatureSpec(FeatureKind.CATEGORICAL, arity=arity, name=n) for n in names)

    # -- container protocol -----------------------------------------------
    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[FeatureSpec]:
        return iter(self._specs)

    def __getitem__(self, i: int) -> FeatureSpec:
        return self._specs[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FeatureSchema):
            return NotImplemented
        return self._specs == other._specs

    def __hash__(self) -> int:
        return hash(self._specs)

    def __repr__(self) -> str:
        n_real, n_cat = len(self._real_idx), len(self._cat_idx)
        return f"FeatureSchema({len(self)} features: {n_real} real, {n_cat} categorical)"

    # -- accessors ----------------------------------------------------------
    @property
    def n_features(self) -> int:
        return len(self._specs)

    @property
    def real_indices(self) -> np.ndarray:
        """Column indices of real features (sorted)."""
        return self._real_idx

    @property
    def categorical_indices(self) -> np.ndarray:
        """Column indices of categorical features (sorted)."""
        return self._cat_idx

    @property
    def is_all_real(self) -> bool:
        return len(self._cat_idx) == 0

    @property
    def is_all_categorical(self) -> bool:
        return len(self._real_idx) == 0

    @property
    def onehot_width(self) -> int:
        """Total width after 1-hot encoding all categorical features."""
        return sum(s.onehot_width for s in self._specs)

    def names(self) -> list[str]:
        return [s.name for s in self._specs]

    def subset(self, indices: Sequence[int] | np.ndarray) -> "FeatureSchema":
        """Schema restricted to (and reordered by) ``indices``."""
        idx = np.asarray(indices, dtype=np.intp)
        if idx.ndim != 1:
            raise SchemaError(f"feature indices must be 1-D, got shape {idx.shape}")
        if len(idx) and (idx.min() < 0 or idx.max() >= len(self)):
            raise SchemaError(
                f"feature indices out of range [0, {len(self)}): "
                f"[{idx.min()}, {idx.max()}]"
            )
        return FeatureSchema(self._specs[i] for i in idx)

    def validate_matrix(self, x: np.ndarray) -> None:
        """Check a data matrix against this schema.

        Verifies the column count and that every non-missing categorical
        entry is an integral code within ``[0, arity)``.
        """
        if x.ndim != 2:
            raise SchemaError(f"data must be 2-D, got shape {x.shape}")
        if x.shape[1] != len(self):
            raise SchemaError(
                f"data has {x.shape[1]} columns but schema describes {len(self)} features"
            )
        for j in self._cat_idx:
            col = x[:, j]
            # Validation pass over categorical columns only; runs once
            # per fit/score boundary, not inside the training loop.
            observed = col[~np.isnan(col)]  # fraclint: disable=FRL016
            if observed.size == 0:
                continue
            if not np.all(observed == np.round(observed)):
                raise SchemaError(f"categorical column {j} contains non-integer codes")
            arity = self._specs[j].arity
            if observed.min() < 0 or observed.max() >= arity:
                raise SchemaError(
                    f"categorical column {j} has codes outside [0, {arity})"
                )
