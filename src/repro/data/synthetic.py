"""Synthetic stand-ins for the paper's expression and SNP data sets.

The public GEO data sets the paper evaluates on are unavailable offline, so
we generate synthetic data with the *same structure FRaC exploits* (see
DESIGN.md §5):

Expression (real-valued)
    A latent-factor ("gene module") model. Features belonging to a module
    are linear functions of a shared per-sample latent factor, so each
    feature is predictable from its module-mates — exactly the inter-feature
    relationships a FRaC predictor learns. Anomalous samples *decouple* a
    subset of module features from their factor, replacing the factor with
    independent noise of equal variance: marginal distributions are
    untouched (the anomaly is invisible feature-by-feature) but predictions
    break, which is the regime FRaC is designed for. Remaining features are
    irrelevant N(0, 1) noise, modelling the paper's "majority of features
    are likely to be irrelevant".

SNPs (ternary categorical)
    A haplotype-block model. SNPs are grouped into LD blocks; each
    individual draws two haplotypes per block from the block's haplotype
    pool, and the genotype code of a SNP is the minor-allele count implied
    by the pair. SNPs within a block are therefore mutually predictable.
    Anomalies re-draw a subset of "relevant" blocks from an independent
    pool, breaking LD. The "autism" configuration plants no signal at all
    (the paper's full-FRaC AUC there is 0.50); the "schizophrenia"
    configuration instead plants an *ancestry confound*: the anomalous
    cohort comes from a population with shifted allele frequencies on
    high-entropy ancestry-informative markers, which is why entropy
    filtering achieves AUC ~ 1.0 on that data set (paper §IV).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import FeatureSchema
from repro.utils.exceptions import DataError
from repro.utils.rng import as_generator


# --------------------------------------------------------------------------
# Expression data
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ExpressionConfig:
    """Knobs for :func:`make_expression_dataset`.

    Attributes
    ----------
    n_features, n_normal, n_anomaly:
        Data-set geometry (Table I columns).
    n_modules:
        Number of latent gene modules.
    module_size:
        Features per module; ``n_modules * module_size`` features are
        "relevant", the remainder are irrelevant noise.
    loading:
        Factor-loading magnitude for module features; higher = stronger
        inter-feature correlation = easier anomaly detection.
    noise_sd:
        Per-feature residual noise standard deviation.
    disrupt_fraction:
        Fraction of each anomalous sample's module features that are
        decoupled from their factor. ``0.0`` plants no signal (AUC ~ 0.5).
    disrupt_mode:
        ``"scattered"`` (default) decouples a uniform random subset of all
        module features — the diffuse-signal regime the paper's filtering
        argument assumes. ``"module"`` instead picks whole modules per
        anomalous sample (as many as needed to reach ``disrupt_fraction``
        of the relevant features) and decouples every feature in them —
        the per-pathway dysregulation regime CSAX characterizes; the
        disrupted module ids are recorded in
        ``metadata["disrupted_modules"]``.
    entropy_bias:
        Variance multiplier applied to *relevant* features. ``> 1`` makes
        relevant features high-(differential-)entropy, so entropy filtering
        keeps them (the hematopoiesis regime); ``< 1`` makes entropy
        filtering preferentially discard them (the ethnic regime); ``1`` is
        neutral.
    missing_rate:
        Fraction of matrix entries replaced by NaN (missing values).
    """

    n_features: int
    n_normal: int
    n_anomaly: int
    n_modules: int = 8
    module_size: int = 10
    loading: float = 1.0
    noise_sd: float = 0.5
    disrupt_fraction: float = 0.5
    disrupt_mode: str = "scattered"
    entropy_bias: float = 1.0
    missing_rate: float = 0.0
    name: str = "expression"

    def __post_init__(self) -> None:
        if self.n_modules * self.module_size > self.n_features:
            raise DataError(
                f"{self.n_modules} modules x {self.module_size} features "
                f"exceed n_features={self.n_features}"
            )
        if not 0.0 <= self.disrupt_fraction <= 1.0:
            raise DataError(f"disrupt_fraction must be in [0, 1]; got {self.disrupt_fraction}")
        if self.disrupt_mode not in ("scattered", "module"):
            raise DataError(
                f"disrupt_mode must be 'scattered' or 'module'; got {self.disrupt_mode!r}"
            )
        if not 0.0 <= self.missing_rate < 1.0:
            raise DataError(f"missing_rate must be in [0, 1); got {self.missing_rate}")
        if self.entropy_bias <= 0:
            raise DataError(f"entropy_bias must be positive; got {self.entropy_bias}")


def make_expression_dataset(
    config: ExpressionConfig, rng: "int | np.random.Generator | None" = None
) -> Dataset:
    """Generate a synthetic gene-expression anomaly-detection data set.

    Returns a :class:`Dataset` whose ``metadata`` records the planted
    structure: ``module_of`` (feature -> module id, -1 for irrelevant
    features) and ``relevant_features`` (sorted indices), which the
    enrichment analysis (paper §IV) tests against.
    """
    cfg = config
    gen = as_generator(rng)
    n = cfg.n_normal + cfg.n_anomaly
    n_relevant = cfg.n_modules * cfg.module_size

    # Module assignment: the first n_relevant features, in module-sized runs,
    # then shuffled so relevance is not positional.
    module_of = np.full(cfg.n_features, -1, dtype=np.intp)
    module_of[:n_relevant] = np.repeat(np.arange(cfg.n_modules), cfg.module_size)
    perm = gen.permutation(cfg.n_features)
    module_of = module_of[perm]

    loadings = cfg.loading * gen.choice([-1.0, 1.0], size=cfg.n_features) * gen.uniform(
        0.75, 1.25, size=cfg.n_features
    )

    factors = gen.standard_normal((n, cfg.n_modules))
    x = gen.normal(0.0, cfg.noise_sd, size=(n, cfg.n_features))
    relevant = module_of >= 0
    # Irrelevant features get marginal variance matching the average
    # relevant feature, so an entropy (variance) filter is *neutral* with
    # respect to relevance unless entropy_bias tilts it.
    relevant_var = float(np.mean(loadings[relevant] ** 2)) + cfg.noise_sd**2
    irrelevant_sd = np.sqrt(max(relevant_var - cfg.noise_sd**2, 1e-12))
    x[:, ~relevant] += irrelevant_sd * gen.standard_normal((n, int((~relevant).sum())))
    x[:, relevant] += factors[:, module_of[relevant]] * loadings[relevant]

    is_anomaly = np.zeros(n, dtype=bool)
    is_anomaly[cfg.n_normal:] = True

    # Decouple each anomaly's chosen relevant features: swap the shared
    # factor for an independent draw of identical variance.
    rel_idx = np.flatnonzero(relevant)
    disrupted_modules: list[np.ndarray] = []
    for s in range(cfg.n_normal, n):
        if cfg.disrupt_mode == "module":
            n_mods = max(1, int(round(cfg.disrupt_fraction * cfg.n_modules)))
            mods = gen.choice(cfg.n_modules, size=n_mods, replace=False)
            chosen = np.flatnonzero(np.isin(module_of, mods))
            disrupted_modules.append(np.sort(mods))
        else:
            k = int(round(cfg.disrupt_fraction * len(rel_idx)))
            if k == 0:
                continue
            chosen = gen.choice(rel_idx, size=k, replace=False)
        fresh = gen.standard_normal(len(chosen))
        x[s, chosen] = fresh * loadings[chosen] + gen.normal(
            0.0, cfg.noise_sd, size=len(chosen)
        )

    if cfg.entropy_bias != 1.0:
        x[:, relevant] *= cfg.entropy_bias

    if cfg.missing_rate > 0.0:
        mask = gen.random((n, cfg.n_features)) < cfg.missing_rate
        x[mask] = np.nan

    schema = FeatureSchema.all_real(cfg.n_features)
    return Dataset(
        x,
        schema,
        is_anomaly,
        name=cfg.name,
        metadata={
            "module_of": module_of,
            "relevant_features": np.sort(rel_idx),
            "disrupted_modules": disrupted_modules,
            "config": cfg,
        },
    )


# --------------------------------------------------------------------------
# SNP data
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SNPConfig:
    """Knobs for :func:`make_snp_dataset`.

    Attributes
    ----------
    n_features, n_normal, n_anomaly:
        Geometry; features are ternary genotypes coded 0/1/2.
    block_size:
        SNPs per LD (haplotype) block.
    n_haplotypes:
        Haplotypes in each block's pool; smaller = stronger LD.
    relevant_blocks:
        Number of blocks whose LD structure anomalies break. ``0`` plants no
        signal (the autism regime).
    ancestry_blocks:
        Number of blocks carrying a *population confound*: anomalous samples
        draw these from a shifted haplotype pool (the schizophrenia regime).
        These blocks are built from near-0.5 allele frequencies so their
        SNPs are top-entropy in the training population.
    background_maf_beta:
        ``(a, b)`` parameters of the Beta distribution from which background
        minor-allele frequencies are drawn; the default is skewed low so
        background SNPs have below-maximal entropy.
    background_drift:
        Weak genome-wide population drift: anomalous samples draw every
        *background* block from the same haplotype table but with
        frequencies mixed toward an independent Dirichlet draw by this
        weight. Individually each SNP barely shifts (per-feature surprisal
        hardly moves, so filters are little affected), but the aggregate
        mean displacement is large — the diffuse component that a JL
        projection integrates, producing Fig. 3's dimension-dependent AUC.
        ``0`` disables it.
    missing_rate:
        Fraction of entries replaced by NaN.
    """

    n_features: int
    n_normal: int
    n_anomaly: int
    block_size: int = 8
    n_haplotypes: int = 4
    relevant_blocks: int = 0
    ancestry_blocks: int = 0
    background_maf_beta: tuple[float, float] = (0.8, 2.2)
    background_drift: float = 0.0
    missing_rate: float = 0.0
    name: str = "snp"

    def __post_init__(self) -> None:
        n_blocks = self.n_features // self.block_size
        if self.relevant_blocks + self.ancestry_blocks > n_blocks:
            raise DataError(
                f"relevant_blocks + ancestry_blocks = "
                f"{self.relevant_blocks + self.ancestry_blocks} exceeds the "
                f"{n_blocks} available blocks"
            )
        if self.block_size < 2:
            raise DataError(f"block_size must be >= 2; got {self.block_size}")
        if self.n_haplotypes < 2:
            raise DataError(f"n_haplotypes must be >= 2; got {self.n_haplotypes}")
        if not 0.0 <= self.background_drift < 1.0:
            raise DataError(
                f"background_drift must lie in [0, 1); got {self.background_drift}"
            )


def _block_haplotypes(
    gen: np.random.Generator, block_size: int, n_haplotypes: int, maf: np.ndarray
) -> np.ndarray:
    """Sample a ``(n_haplotypes, block_size)`` 0/1 allele table.

    Each SNP's per-haplotype minor-allele indicator is Bernoulli(maf), so
    the marginal allele frequency tracks ``maf`` while SNPs within the block
    are correlated through the haplotype identity.
    """
    return (gen.random((n_haplotypes, block_size)) < maf[None, :]).astype(np.float64)


def _balanced_haplotypes(
    gen: np.random.Generator, block_size: int, n_haplotypes: int
) -> np.ndarray:
    """Allele table in which every SNP is minor on exactly half the pool.

    Used for ancestry-informative blocks: with a near-uniform haplotype
    frequency this pins the population allele frequency at ~0.5, the
    maximum-entropy point for a ternary genotype, so these markers reliably
    rank at the top of an entropy filter.
    """
    half = n_haplotypes // 2
    table = np.zeros((n_haplotypes, block_size))
    for j in range(block_size):
        table[gen.choice(n_haplotypes, size=half, replace=False), j] = 1.0
    return table


def _draw_genotypes(
    gen: np.random.Generator,
    n_samples: int,
    table: np.ndarray,
    hap_freq: np.ndarray,
) -> np.ndarray:
    """Genotype codes (0/1/2) for one block: two haplotype draws per sample."""
    n_h = table.shape[0]
    h1 = gen.choice(n_h, size=n_samples, p=hap_freq)
    h2 = gen.choice(n_h, size=n_samples, p=hap_freq)
    return table[h1] + table[h2]


def make_snp_dataset(
    config: SNPConfig, rng: "int | np.random.Generator | None" = None
) -> Dataset:
    """Generate a synthetic SNP anomaly-detection data set.

    ``metadata`` records ``block_of`` (feature -> block id), plus the index
    arrays ``relevant_features`` (disease-linked blocks whose LD anomalies
    break) and ``ancestry_features`` (population-confound blocks).
    """
    cfg = config
    gen = as_generator(rng)
    n = cfg.n_normal + cfg.n_anomaly
    n_blocks = cfg.n_features // cfg.block_size
    tail = cfg.n_features - n_blocks * cfg.block_size

    roles = np.zeros(n_blocks, dtype=np.intp)  # 0 background, 1 relevant, 2 ancestry
    special = gen.choice(n_blocks, size=cfg.relevant_blocks + cfg.ancestry_blocks, replace=False)
    roles[special[: cfg.relevant_blocks]] = 1
    roles[special[cfg.relevant_blocks:]] = 2

    x = np.empty((n, cfg.n_features), dtype=np.float64)
    block_of = np.full(cfg.n_features, -1, dtype=np.intp)
    is_anomaly = np.zeros(n, dtype=bool)
    is_anomaly[cfg.n_normal:] = True
    anom = np.flatnonzero(is_anomaly)

    a, b = cfg.background_maf_beta
    # Dirichlet concentration vectors are loop-invariant (FRL019): build
    # them once, not once per block.
    alpha_ancestry = np.full(cfg.n_haplotypes, 40.0)
    alpha_background = np.full(cfg.n_haplotypes, 2.0)
    for blk in range(n_blocks):
        cols = slice(blk * cfg.block_size, (blk + 1) * cfg.block_size)
        block_of[cols] = blk
        if roles[blk] == 2:
            # Ancestry-informative markers: allele frequency pinned at ~0.5
            # in the training population => top-entropy; strongly shifted in
            # the anomalous cohort's pool.
            table = _balanced_haplotypes(gen, cfg.block_size, cfg.n_haplotypes)
            hap_freq = gen.dirichlet(alpha_ancestry)
            maf_shift = gen.uniform(0.02, 0.10, size=cfg.block_size)
        else:
            maf = gen.beta(a, b, size=cfg.block_size)
            maf_shift = maf
            table = _block_haplotypes(gen, cfg.block_size, cfg.n_haplotypes, maf)
            hap_freq = gen.dirichlet(alpha_background)
        x[:, cols] = _draw_genotypes(gen, n, table, hap_freq)

        if roles[blk] == 1 and len(anom):
            # Disease-linked block: anomalies break LD by drawing each SNP's
            # genotype independently at the marginal allele frequency.
            freq = table.T @ hap_freq  # per-SNP allele frequency
            alleles = gen.random((len(anom), cfg.block_size, 2)) < freq[None, :, None]
            x[np.ix_(anom, np.arange(cols.start, cols.stop))] = alleles.sum(axis=2)
        elif roles[blk] == 2 and len(anom):
            # Ancestry block: anomalies come from a shifted population.
            table2 = _block_haplotypes(gen, cfg.block_size, cfg.n_haplotypes, maf_shift)
            hap_freq2 = gen.dirichlet(alpha_background)
            x[np.ix_(anom, np.arange(cols.start, cols.stop))] = _draw_genotypes(
                gen, len(anom), table2, hap_freq2
            )
        elif cfg.background_drift > 0.0 and len(anom):
            # Weak genome-wide drift: same haplotypes, gently mixed
            # frequencies (see the background_drift docstring).
            hap_freq2 = (
                (1.0 - cfg.background_drift) * hap_freq
                + cfg.background_drift * gen.dirichlet(alpha_background)
            )
            x[np.ix_(anom, np.arange(cols.start, cols.stop))] = _draw_genotypes(
                gen, len(anom), table, hap_freq2
            )

    if tail:
        # Leftover columns that do not fill a whole block: independent SNPs.
        maf = gen.beta(a, b, size=tail)
        alleles = gen.random((n, tail, 2)) < maf[None, :, None]
        x[:, cfg.n_features - tail:] = alleles.sum(axis=2)

    if cfg.missing_rate > 0.0:
        mask = gen.random((n, cfg.n_features)) < cfg.missing_rate
        x[mask] = np.nan

    schema = FeatureSchema.all_categorical(cfg.n_features, arity=3)
    relevant_features = np.flatnonzero(np.isin(block_of, np.flatnonzero(roles == 1)))
    ancestry_features = np.flatnonzero(np.isin(block_of, np.flatnonzero(roles == 2)))
    return Dataset(
        x,
        schema,
        is_anomaly,
        name=cfg.name,
        metadata={
            "block_of": block_of,
            "relevant_features": relevant_features,
            "ancestry_features": ancestry_features,
            "config": cfg,
        },
    )
