"""Data substrate: schemas, data sets, synthetic generators, replicates."""

from repro.data.compendium import (
    COMPENDIUM,
    EXPRESSION_DATASETS,
    SNP_DATASETS,
    CompendiumEntry,
    load_dataset,
    load_replicates,
    schizophrenia_split,
    table1_rows,
)
from repro.data.dataset import Dataset, Replicate
from repro.data.gene_sets import block_gene_sets, module_gene_sets
from repro.data.io import read_delimited, write_delimited
from repro.data.replicates import fixed_split_replicate, make_replicate, make_replicates
from repro.data.schema import FeatureKind, FeatureSchema, FeatureSpec
from repro.data.synthetic import (
    ExpressionConfig,
    SNPConfig,
    make_expression_dataset,
    make_snp_dataset,
)

__all__ = [
    "FeatureKind",
    "FeatureSpec",
    "FeatureSchema",
    "Dataset",
    "Replicate",
    "read_delimited",
    "write_delimited",
    "module_gene_sets",
    "block_gene_sets",
    "make_replicate",
    "make_replicates",
    "fixed_split_replicate",
    "ExpressionConfig",
    "SNPConfig",
    "make_expression_dataset",
    "make_snp_dataset",
    "COMPENDIUM",
    "CompendiumEntry",
    "EXPRESSION_DATASETS",
    "SNP_DATASETS",
    "load_dataset",
    "load_replicates",
    "schizophrenia_split",
    "table1_rows",
]
