"""Replicate construction following the paper's protocol (§III-A).

"For each data set except schizophrenia, we construct five replicates. Each
replicate consists of a training set containing a randomly selected
two-thirds of the normal samples. The test set consists of the remaining
normal samples as well as all non-normal samples."

The schizophrenia data set instead uses a fixed, single train/test split
(HapMap controls train; a disjoint cohort tests) — see
:func:`fixed_split_replicate`.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset, Replicate
from repro.utils.exceptions import DataError
from repro.utils.rng import spawn_generators


def make_replicate(
    dataset: Dataset,
    *,
    train_fraction: float = 2.0 / 3.0,
    rng: "int | np.random.Generator | None" = None,
    index: int = 0,
) -> Replicate:
    """Build one train/test replicate from a labelled data set."""
    if not 0.0 < train_fraction < 1.0:
        raise DataError(f"train_fraction must lie in (0, 1); got {train_fraction}")
    gen = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    normal_idx = np.flatnonzero(~dataset.is_anomaly)
    anomaly_idx = np.flatnonzero(dataset.is_anomaly)
    if len(normal_idx) < 3:
        raise DataError(
            f"data set {dataset.name!r} has only {len(normal_idx)} normal samples; "
            "need at least 3 to split"
        )
    n_train = max(1, int(round(train_fraction * len(normal_idx))))
    if n_train >= len(normal_idx):
        n_train = len(normal_idx) - 1
    perm = gen.permutation(normal_idx)
    train_idx = np.sort(perm[:n_train])
    heldout_idx = np.sort(perm[n_train:])
    test_idx = np.concatenate([heldout_idx, anomaly_idx])
    return Replicate(
        x_train=dataset.x[train_idx],
        x_test=dataset.x[test_idx],
        y_test=dataset.is_anomaly[test_idx],
        schema=dataset.schema,
        name=dataset.name,
        index=index,
    )


def make_replicates(
    dataset: Dataset,
    n_replicates: int = 5,
    *,
    train_fraction: float = 2.0 / 3.0,
    rng: "int | np.random.Generator | None" = None,
) -> list[Replicate]:
    """Build the paper's five (by default) independent replicates."""
    if n_replicates < 1:
        raise DataError(f"n_replicates must be >= 1; got {n_replicates}")
    gens = spawn_generators(rng, n_replicates)
    return [
        make_replicate(dataset, train_fraction=train_fraction, rng=g, index=i)
        for i, g in enumerate(gens)
    ]


def fixed_split_replicate(
    train: Dataset, test: Dataset, *, name: str = "", index: int = 0
) -> Replicate:
    """Replicate from a pre-defined split (the schizophrenia protocol).

    ``train`` must be all-normal; ``test`` supplies its own labels. Both must
    share a schema.
    """
    if train.n_anomaly:
        raise DataError(
            f"fixed training set contains {train.n_anomaly} anomalous samples; "
            "FRaC trains on normals only"
        )
    if train.schema != test.schema:
        raise DataError("train and test schemas differ")
    return Replicate(
        x_train=train.x,
        x_test=test.x,
        y_test=test.is_anomaly,
        schema=train.schema,
        name=name or train.name,
        index=index,
    )
