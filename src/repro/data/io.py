"""Loading real data sets from delimited text files.

The synthetic compendium stands in for the paper's GEO data sets, but a
downstream user will want to run FRaC on *their own* expression matrix or
genotype table. This module reads delimited files (CSV/TSV) into
:class:`~repro.data.Dataset`:

- one row per sample;
- feature columns either declared via ``categorical``/``real`` or inferred
  (a column whose non-missing values are all small non-negative integers
  with few distinct levels is treated as categorical);
- an optional label column marks anomalous samples;
- empty fields, ``NA``, ``NaN`` and ``?`` are treated as missing values.

Example::

    ds = read_delimited("cohort.tsv", delimiter="\\t", label_column="status",
                        anomaly_values={"case"})
    replicates = make_replicates(ds, 5, rng=0)
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import FeatureKind, FeatureSchema, FeatureSpec
from repro.utils.exceptions import DataError

#: Field values treated as missing (case-insensitive).
MISSING_TOKENS = {"", "na", "nan", "?", "null", "none"}

#: A column is inferred categorical when every observed value is a
#: non-negative integer below this bound and there are at most this many
#: distinct levels.
MAX_INFERRED_ARITY = 10


def _parse_cell(text: str) -> float:
    token = text.strip()
    if token.lower() in MISSING_TOKENS:
        return np.nan
    try:
        return float(token)
    except ValueError:
        raise DataError(f"cannot parse numeric value {text!r}") from None


def infer_schema(
    matrix: np.ndarray,
    names: Sequence[str],
    *,
    categorical: "Iterable[str] | None" = None,
    real: "Iterable[str] | None" = None,
) -> FeatureSchema:
    """Schema for a parsed matrix, honouring explicit declarations.

    Columns named in ``categorical``/``real`` are forced to that kind;
    remaining columns are inferred (integer-coded, low-cardinality,
    non-negative => categorical; anything else => real).
    """
    categorical = set(categorical or ())
    real = set(real or ())
    overlap = categorical & real
    if overlap:
        raise DataError(f"columns declared both categorical and real: {sorted(overlap)}")
    unknown = (categorical | real) - set(names)
    if unknown:
        raise DataError(f"declared columns not in the file: {sorted(unknown)}")

    specs = []
    for j, name in enumerate(names):
        col = matrix[:, j]
        # One-shot schema inference at load time: I/O-bound, per-column
        # masks are not a training-path cost.
        observed = col[~np.isnan(col)]  # fraclint: disable=FRL016
        force_cat = name in categorical
        force_real = name in real
        is_int_coded = (
            observed.size > 0
            and np.all(observed == np.rint(observed))
            and observed.min() >= 0
            and observed.max() < MAX_INFERRED_ARITY
            and len(np.unique(observed)) <= MAX_INFERRED_ARITY
        )
        if force_cat or (is_int_coded and not force_real):
            if observed.size == 0:
                raise DataError(f"categorical column {name!r} has no observed values")
            if not np.all(observed == np.rint(observed)) or observed.min() < 0:
                raise DataError(
                    f"column {name!r} declared categorical but holds non-code values"
                )
            arity = int(observed.max()) + 1
            specs.append(FeatureSpec(FeatureKind.CATEGORICAL, arity=max(arity, 2), name=name))
        else:
            specs.append(FeatureSpec(FeatureKind.REAL, name=name))
    return FeatureSchema(specs)


def read_delimited(
    path: "str | Path",
    *,
    delimiter: str = ",",
    label_column: "str | None" = None,
    anomaly_values: "set[str] | None" = None,
    categorical: "Iterable[str] | None" = None,
    real: "Iterable[str] | None" = None,
    name: str = "",
) -> Dataset:
    """Read a delimited file with a header row into a :class:`Dataset`.

    Parameters
    ----------
    path:
        File to read; the first row must name the columns.
    label_column:
        Column holding sample status; values in ``anomaly_values``
        (default ``{"1", "true", "anomaly", "case"}``) mark anomalies.
        Without a label column, all samples are treated as normal.
    categorical / real:
        Explicit kind declarations by column name (see :func:`infer_schema`).
    """
    path = Path(path)
    if not path.exists():
        raise DataError(f"no such file: {path}")
    anomaly_values = {
        v.lower() for v in (anomaly_values or {"1", "true", "anomaly", "case"})
    }

    with path.open(newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        header = [h.strip() for h in header]
        rows = [row for row in reader if row and any(cell.strip() for cell in row)]

    if label_column is not None:
        if label_column not in header:
            raise DataError(f"label column {label_column!r} not in header {header}")
        label_idx = header.index(label_column)
    else:
        label_idx = None

    feature_names = [h for i, h in enumerate(header) if i != label_idx]
    n, f = len(rows), len(feature_names)
    if n == 0:
        raise DataError(f"{path} has a header but no data rows")
    matrix = np.empty((n, f), dtype=np.float64)
    labels = np.zeros(n, dtype=bool)
    for r, row in enumerate(rows):
        if len(row) != len(header):
            raise DataError(
                f"{path}:{r + 2}: expected {len(header)} fields, got {len(row)}"
            )
        c = 0
        for i, cell in enumerate(row):
            if i == label_idx:
                labels[r] = cell.strip().lower() in anomaly_values
            else:
                matrix[r, c] = _parse_cell(cell)
                c += 1

    schema = infer_schema(matrix, feature_names, categorical=categorical, real=real)
    return Dataset(matrix, schema, labels, name=name or path.stem)


def write_delimited(
    dataset: Dataset, path: "str | Path", *, delimiter: str = ",", label_column: str = "label"
) -> None:
    """Write a :class:`Dataset` back out (round-trips with
    :func:`read_delimited` given matching kind declarations)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh, delimiter=delimiter)
        writer.writerow(dataset.schema.names() + [label_column])
        for row, is_anom in zip(dataset.x, dataset.is_anomaly):
            cells = ["" if np.isnan(v) else repr(float(v)) for v in row]
            writer.writerow(cells + ["1" if is_anom else "0"])
