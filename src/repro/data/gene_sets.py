"""Gene-set collections from synthetic-compendium ground truth.

CSAX-style characterization (``repro.csax``) tests anomaly rankings
against *annotated gene sets*. With real data those come from GO/MSigDB;
with the synthetic compendium the planted structure is the annotation —
and, unlike real annotations, it is exactly correct, which is what makes
the enrichment machinery testable (DESIGN.md §5).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.exceptions import DataError


def module_gene_sets(dataset: Dataset, *, include_background: bool = False) -> dict[str, list[int]]:
    """Expression data: one gene set per planted co-expression module.

    ``include_background`` adds an ``"irrelevant"`` set holding the noise
    features (useful as a negative control in enrichment tests).
    """
    module_of = dataset.metadata.get("module_of")
    if module_of is None:
        raise DataError(
            f"data set {dataset.name!r} has no module metadata "
            "(not an expression compendium data set?)"
        )
    module_of = np.asarray(module_of)
    sets = {
        f"module-{m}": np.flatnonzero(module_of == m).tolist()
        for m in range(int(module_of.max()) + 1)
    }
    if include_background:
        sets["irrelevant"] = np.flatnonzero(module_of < 0).tolist()
    return sets


def block_gene_sets(dataset: Dataset, *, roles_only: bool = True) -> dict[str, list[int]]:
    """SNP data: gene sets for the planted disease/ancestry blocks.

    With ``roles_only`` (default) only the special roles are returned —
    ``"disease"`` (LD-broken blocks) and ``"ancestry"`` (confound blocks);
    otherwise every LD block becomes its own set.
    """
    block_of = dataset.metadata.get("block_of")
    if block_of is None:
        raise DataError(
            f"data set {dataset.name!r} has no block metadata "
            "(not a SNP compendium data set?)"
        )
    sets: dict[str, list[int]] = {}
    relevant = dataset.metadata.get("relevant_features")
    ancestry = dataset.metadata.get("ancestry_features")
    if relevant is not None and len(relevant):
        sets["disease"] = np.asarray(relevant).tolist()
    if ancestry is not None and len(ancestry):
        sets["ancestry"] = np.asarray(ancestry).tolist()
    if not roles_only:
        block_of = np.asarray(block_of)
        for blk in range(int(block_of.max()) + 1):
            sets[f"block-{blk}"] = np.flatnonzero(block_of == blk).tolist()
    if not sets:
        raise DataError(
            f"data set {dataset.name!r} has no planted gene sets "
            "(the autism configuration plants none, by design)"
        )
    return sets
