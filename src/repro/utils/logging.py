"""Library logging.

All repro loggers live under the ``"repro"`` namespace and follow stdlib
conventions: the library never configures handlers itself (a
``NullHandler`` on the root logger silences the "no handler" warning);
applications opt in with :func:`enable_console_logging` or their own
``logging`` configuration. FRaC fits at SNP scale run for hours — INFO
progress lines are how an operator tells "working" from "wedged".
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """A logger in the library namespace (``repro`` or ``repro.<name>``)."""
    return logging.getLogger(f"{_ROOT_NAME}.{name}" if name else _ROOT_NAME)


def enable_console_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach a stderr handler to the library root (idempotent-ish: call
    once; returns the handler so callers can remove it)."""
    logger = logging.getLogger(_ROOT_NAME)
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
    )
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
