"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DataError(ReproError, ValueError):
    """Raised when input data is malformed (shape, dtype, NaN policy...)."""


class SchemaError(ReproError, ValueError):
    """Raised when a :class:`~repro.data.FeatureSchema` is inconsistent
    with the data it describes."""


class FitError(ReproError, RuntimeError):
    """Raised when a model cannot be fit (e.g. degenerate training set)."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when ``predict``/``score`` is called before ``fit``."""
