"""Input-validation helpers used across the library.

These raise :class:`~repro.utils.exceptions.DataError` /
:class:`~repro.utils.exceptions.NotFittedError` with actionable messages
instead of letting numpy broadcast errors surface deep inside the engine.
"""

from __future__ import annotations

import numpy as np

from repro.utils.exceptions import DataError, NotFittedError


def check_2d(x: np.ndarray, name: str = "X", *, allow_nan: bool = True) -> np.ndarray:
    """Validate that ``x`` is a 2-D float array; returns it as float64.

    ``allow_nan=False`` additionally rejects NaN entries (NaN encodes a
    *missing value* elsewhere in the library, which some consumers — e.g.
    the JL projector — cannot handle).
    """
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 2:
        raise DataError(f"{name} must be 2-D (samples x features); got shape {arr.shape}")
    if not allow_nan and np.isnan(arr).any():
        raise DataError(f"{name} contains NaN but NaN (missing values) is not supported here")
    if np.isinf(arr).any():
        raise DataError(f"{name} contains infinite values")
    return arr


def check_consistent_length(*arrays: np.ndarray) -> int:
    """Validate that all arrays share the same first-dimension length."""
    lengths = {np.asarray(a).shape[0] for a in arrays if a is not None}
    if len(lengths) > 1:
        raise DataError(f"inconsistent first-dimension lengths: {sorted(lengths)}")
    return lengths.pop() if lengths else 0


def check_feature_index(index: int, n_features: int) -> int:
    """Validate a feature index against the feature count."""
    index = int(index)
    if not 0 <= index < n_features:
        raise DataError(f"feature index {index} out of range [0, {n_features})")
    return index


def check_fitted(obj: object, attr: str) -> None:
    """Raise :class:`NotFittedError` unless ``obj.<attr>`` exists and is set."""
    if getattr(obj, attr, None) is None:
        raise NotFittedError(
            f"{type(obj).__name__} is not fitted yet; call fit() before using it"
        )


def check_probability(p: float, name: str = "p", *, inclusive_low: bool = False) -> float:
    """Validate a probability-like scalar in (0, 1] (or [0, 1])."""
    p = float(p)
    low_ok = p >= 0.0 if inclusive_low else p > 0.0
    if not (low_ok and p <= 1.0):
        bracket = "[0, 1]" if inclusive_low else "(0, 1]"
        raise DataError(f"{name} must lie in {bracket}; got {p}")
    return p
