"""Shared utilities: RNG plumbing, validation helpers, and exceptions."""

from repro.utils.exceptions import (
    DataError,
    FitError,
    NotFittedError,
    ReproError,
    SchemaError,
)
from repro.utils.logging import enable_console_logging, get_logger
from repro.utils.rng import as_generator, spawn_generators, spawn_seeds
from repro.utils.validation import (
    check_2d,
    check_consistent_length,
    check_feature_index,
    check_fitted,
    check_probability,
)

__all__ = [
    "ReproError",
    "DataError",
    "SchemaError",
    "FitError",
    "NotFittedError",
    "get_logger",
    "enable_console_logging",
    "as_generator",
    "spawn_generators",
    "spawn_seeds",
    "check_2d",
    "check_consistent_length",
    "check_feature_index",
    "check_fitted",
    "check_probability",
]
