"""Deterministic random-number plumbing.

All stochastic components of the library accept either an integer seed, a
:class:`numpy.random.Generator`, a :class:`numpy.random.SeedSequence`, or
``None``. Parallel work items derive *independent* child streams via
:meth:`numpy.random.SeedSequence.spawn`, which guarantees that results are
identical under serial, threaded, and multi-process execution — a
requirement called out in DESIGN.md §6.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(rng: "int | np.random.Generator | np.random.SeedSequence | None") -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared stream);
    anything else constructs a fresh, independent generator.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    return np.random.default_rng(rng)


def spawn_seeds(rng: "int | np.random.Generator | np.random.SeedSequence | None", n: int) -> Sequence[np.random.SeedSequence]:
    """Derive ``n`` independent child seed sequences from ``rng``.

    Children are independent of each other and of the parent stream, so a
    per-feature (or per-ensemble-member) work item seeded with child ``i``
    produces the same values no matter which worker executes it.
    """
    if not isinstance(n, (int, np.integer)) or isinstance(n, bool):
        raise ValueError(f"number of seeds must be an integer; got {n!r}")
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of seeds: {n}")
    if isinstance(rng, np.random.SeedSequence):
        return rng.spawn(n)
    if isinstance(rng, np.random.Generator):
        # Derive a SeedSequence from the generator's stream so repeated calls
        # advance (and therefore differ), matching generator semantics.
        root = np.random.SeedSequence(int(rng.integers(0, 2**63 - 1)))
        return root.spawn(n)
    return np.random.SeedSequence(rng).spawn(n)


def spawn_generators(rng: "int | np.random.Generator | np.random.SeedSequence | None", n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators (see :func:`spawn_seeds`)."""
    return [np.random.default_rng(s) for s in spawn_seeds(rng, n)]
