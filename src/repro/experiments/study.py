"""Experiment drivers: one function per paper table/figure.

Each driver returns structured rows (lists of dicts) that the benchmark
scripts render; EXPERIMENTS.md records these against the paper's values.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.data.compendium import COMPENDIUM, load_replicates
from repro.eval.auc import auc_score
from repro.eval.harness import EvaluationResult, evaluate_on_replicates
from repro.eval.stats import mean_std
from repro.experiments.runners import detector_factory, make_detector
from repro.experiments.settings import StudySettings
from repro.parallel.resources import ResourceReport
from repro.utils.exceptions import DataError
from repro.utils.rng import spawn_seeds

def _stable_hash(text: str) -> int:
    """Process-independent string hash (``hash()`` is salted per process,
    which would break cross-run determinism of the seeding scheme)."""
    return zlib.crc32(text.encode("utf-8")) & 0x7FFFFFFF


#: Data sets that full FRaC can actually be run on (the paper could not run
#: full FRaC on schizophrenia; neither do we — its Table II row is
#: extrapolated from autism, below).
RUNNABLE_DATASETS = (
    "breast.basal",
    "biomarkers",
    "ethnic",
    "bild",
    "smokers2",
    "hematopoiesis",
    "autism",
)


#: Memo of completed (settings, method, dataset, ...) runs.
_RESULT_CACHE: dict[tuple, EvaluationResult] = {}


def run_method_on_dataset(
    method: str,
    dataset: str,
    settings: StudySettings,
    *,
    seed_offset: int = 0,
    **kwargs,
) -> EvaluationResult:
    """Evaluate one method over a data set's replicates.

    The replicate split seed depends only on (settings.seed, dataset), so
    every method sees the *same* replicates — required for the paper's
    per-replicate AUC fractions. Completed runs are memoized (Tables II,
    III and IV share the same full-FRaC reference runs; results are
    deterministic functions of the key, so memoization is pure).
    """
    cache_key = (
        repr(settings), method, dataset, seed_offset, tuple(sorted(kwargs.items())),
    )
    cached = _RESULT_CACHE.get(cache_key)
    if cached is not None:
        return cached
    data_seed = np.random.SeedSequence([settings.seed, _stable_hash(dataset)])
    replicates = load_replicates(
        dataset,
        settings.n_replicates,
        scale=settings.scale,
        sample_scale=settings.sample_scale,
        rng=np.random.default_rng(data_seed),
    )
    method_seed = np.random.SeedSequence(
        [settings.seed, _stable_hash(dataset), _stable_hash(method), seed_offset]
    )
    result = evaluate_on_replicates(
        detector_factory(method, dataset, settings, **kwargs),
        replicates,
        method=method,
        rng=method_seed,
    )
    _RESULT_CACHE[cache_key] = result
    return result


# ---------------------------------------------------------------------------
# Table II: full FRaC runs (+ extrapolated schizophrenia row)
# ---------------------------------------------------------------------------

def extrapolate_full_cost(
    autism: ResourceReport,
    *,
    autism_features: int,
    autism_train: int,
    target_features: int,
    target_train: int,
) -> ResourceReport:
    """The paper's Table II schizophrenia extrapolation, from autism.

    Full FRaC trains one model per feature on all other features, so CPU
    time scales ~ features^2 x training samples and retained model state
    scales ~ features^2 (each of f models keeps O(f) state). The paper used
    the same device ("time and memory performance for this data set were
    estimated by extrapolation from the performance on the autism data").
    """
    if min(autism_features, target_features, autism_train, target_train) <= 0:
        raise DataError("extrapolation requires positive geometry")
    f_ratio = target_features / autism_features
    n_ratio = target_train / autism_train
    return ResourceReport(
        cpu_seconds=autism.cpu_seconds * f_ratio**2 * n_ratio,
        memory_bytes=int(autism.memory_bytes * f_ratio**2),
        n_tasks=int(autism.n_tasks * f_ratio),
        work_units=int(autism.work_units * f_ratio**2 * n_ratio),
    )


def table2(settings: StudySettings) -> list[dict[str, object]]:
    """Full-run AUC/time/memory per data set (Table II)."""
    rows: list[dict[str, object]] = []
    autism_result: "EvaluationResult | None" = None
    for dataset in RUNNABLE_DATASETS:
        result = run_method_on_dataset("full", dataset, settings)
        if dataset == "autism":
            autism_result = result
        res = result.mean_resources
        rows.append(
            {
                "data set": dataset,
                "auc": result.auc,
                "time_s": res.cpu_seconds,
                "mem_bytes": res.memory_bytes,
                "estimated": False,
            }
        )
    # Extrapolated schizophrenia row (italicized in the paper).
    schiz = COMPENDIUM["schizophrenia"]
    autism = COMPENDIUM["autism"]
    est = extrapolate_full_cost(
        autism_result.mean_resources,
        autism_features=max(32, round(autism.paper_features * settings.scale)),
        autism_train=round(autism.paper_normal * settings.sample_scale * 2 / 3),
        target_features=max(64, round(schiz.paper_features * settings.scale)),
        target_train=round((schiz.paper_normal - 10) * settings.sample_scale),
    )
    rows.append(
        {
            "data set": "schizophrenia",
            "auc": None,
            "time_s": est.cpu_seconds,
            "mem_bytes": est.memory_bytes,
            "estimated": True,
        }
    )
    return rows


# ---------------------------------------------------------------------------
# Tables III & IV: variants as fractions of the full run
# ---------------------------------------------------------------------------

TABLE3_METHODS = ("random_ensemble", "jl", "entropy")
TABLE4_METHODS = ("diverse", "diverse_ensemble")


def variant_fraction_rows(
    methods: tuple[str, ...], settings: StudySettings
) -> list[dict[str, object]]:
    """AUC/time/memory fractions vs. full FRaC on the seven runnable sets."""
    rows: list[dict[str, object]] = []
    for dataset in RUNNABLE_DATASETS:
        full = run_method_on_dataset("full", dataset, settings)
        for method in methods:
            result = run_method_on_dataset(method, dataset, settings)
            rows.append(result.as_fraction_of(full))
    return rows


def table3(settings: StudySettings) -> list[dict[str, object]]:
    """Table III, plus one extra JL row per data set at the
    *accuracy-faithful* dimension (see
    :meth:`StudySettings.jl_accuracy_components`): at reduced scale the
    paper's k = 1024 splits into a cost-faithful and an accuracy-faithful
    surrogate; at full scale the two rows coincide."""
    rows = []
    for dataset in RUNNABLE_DATASETS:
        full = run_method_on_dataset("full", dataset, settings)
        for method in TABLE3_METHODS:
            result = run_method_on_dataset(method, dataset, settings)
            rows.append(result.as_fraction_of(full))
        # The accuracy-faithful row only makes sense while the projection
        # still reduces the dimension substantially (k <= d/2); near or
        # above d it would cost more than full FRaC for nothing.
        scaled_features = round(COMPENDIUM[dataset].paper_features * settings.scale)
        k_acc = settings.jl_accuracy_components
        if k_acc != settings.jl_components and 2 * k_acc <= scaled_features:
            result = run_method_on_dataset("jl", dataset, settings, jl_components=k_acc)
            row = result.as_fraction_of(full)
            row["method"] = f"jl_k{k_acc}"
            rows.append(row)
    return rows


def table4(settings: StudySettings) -> list[dict[str, object]]:
    return variant_fraction_rows(TABLE4_METHODS, settings)


def average_fractions(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    """The tables' "Avg" row, per method."""
    out = []
    for method in {r["method"] for r in rows}:
        sub = [r for r in rows if r["method"] == method]
        out.append(
            {
                "data set": "Avg",
                "method": method,
                "auc_fraction": mean_std([r["auc_fraction"].mean for r in sub]),
                "work_fraction": float(np.mean([r["work_fraction"] for r in sub])),
                "time_fraction": float(np.mean([r["time_fraction"] for r in sub])),
                "mem_fraction": float(np.mean([r["mem_fraction"] for r in sub])),
            }
        )
    return sorted(out, key=lambda r: r["method"])


# ---------------------------------------------------------------------------
# Table V + Figure 3: the schizophrenia study
# ---------------------------------------------------------------------------

def schizophrenia_full_estimate(settings: StudySettings) -> ResourceReport:
    """Our own Table II extrapolation, reused as Table V's denominator."""
    autism_result = run_method_on_dataset("full", "autism", settings)
    schiz = COMPENDIUM["schizophrenia"]
    autism = COMPENDIUM["autism"]
    return extrapolate_full_cost(
        autism_result.mean_resources,
        autism_features=max(32, round(autism.paper_features * settings.scale)),
        autism_train=round(autism.paper_normal * settings.sample_scale * 2 / 3),
        target_features=max(64, round(schiz.paper_features * settings.scale)),
        target_train=round((schiz.paper_normal - 10) * settings.sample_scale),
    )


def table5(
    settings: StudySettings, *, full_estimate: "ResourceReport | None" = None
) -> list[dict[str, object]]:
    """Schizophrenia: entropy filter, random ensemble, JL at 1024/2048/4096
    (paper dims, scaled). Raw AUC; cost fractions vs. the extrapolated full
    run (the paper's presentation)."""
    full = full_estimate if full_estimate is not None else schizophrenia_full_estimate(settings)
    rows: list[dict[str, object]] = []
    jobs: list[tuple[str, dict]] = [
        ("entropy", {}),
        ("random_ensemble", {}),
        ("jl", {"jl_components": settings.jl_dim(1024)}),
        ("jl", {"jl_components": settings.jl_dim(2048)}),
        ("jl", {"jl_components": settings.jl_dim(4096)}),
    ]
    for method, kwargs in jobs:
        result = run_method_on_dataset(method, "schizophrenia", settings, **kwargs)
        res = result.mean_resources
        label = method
        if method == "jl":
            label = f"jl_{kwargs['jl_components']}d"
        frac = res.fraction_of(full)
        rows.append(
            {
                "method": label,
                "auc": result.auc,
                "work_fraction": frac["work_fraction"],
                "time_fraction": frac["time_fraction"],
                "mem_fraction": frac["mem_fraction"],
            }
        )
    return rows


def fig3_sweep(
    settings: StudySettings,
    *,
    paper_dims: tuple[int, ...] = (1024, 2048, 4096),
    n_projections: int = 10,
) -> list[dict[str, object]]:
    """Figure 3: JL AUC on schizophrenia vs projected dimension.

    Each point averages ``n_projections`` independent projections on the
    fixed schizophrenia split (the paper's error bars are the projection
    standard deviation)."""
    data_seed = np.random.SeedSequence([settings.seed, _stable_hash("schizophrenia")])
    replicates = load_replicates(
        "schizophrenia",
        scale=settings.scale,
        sample_scale=settings.sample_scale,
        rng=np.random.default_rng(data_seed),
    )
    rep = replicates[0]
    rows = []
    for paper_dim in paper_dims:
        k = settings.jl_dim(paper_dim)
        seeds = spawn_seeds(
            np.random.SeedSequence([settings.seed, paper_dim]), n_projections
        )
        aucs = []
        for seed in seeds:
            det = make_detector(
                "jl", "schizophrenia", settings, rng=seed, jl_components=k
            )
            det.fit(rep.x_train, rep.schema)
            aucs.append(auc_score(rep.y_test, det.score(rep.x_test)))
        rows.append(
            {
                "paper_dim": paper_dim,
                "scaled_dim": k,
                "auc": mean_std(aucs),
            }
        )
    return rows
