"""Programmatic shape-target checks (the reproduction contract as code).

DESIGN.md §4 lists the *shapes* that must hold for the reproduction to
count — who wins, by roughly what factor, where behaviour changes. This
module encodes them as named checks over the experiment drivers' row
dicts, so the contract is testable (the integration suite runs the cheap
deterministic ones) and auditable (the report can print them).

Each check returns a :class:`ShapeCheck` with ``passed`` plus the observed
values, never raising — callers decide what failure means at their scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ShapeCheck:
    """Outcome of one shape assertion."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


def _rows_for(rows, method: str):
    return [r for r in rows if r["method"] == method]


def check_variants_cost_less(rows: "list[dict]") -> list[ShapeCheck]:
    """Every Table III variant's modelled work and memory are < the full
    run's on every data set (the scalability claim itself)."""
    out = []
    for quantity in ("work_fraction", "mem_fraction"):
        worst = max((r[quantity] for r in rows), default=float("nan"))
        out.append(
            ShapeCheck(
                name=f"variants {quantity} < 1",
                passed=bool(worst < 1.0),
                detail=f"max over rows = {worst:.3f}",
            )
        )
    return out


def check_entropy_cheapest(rows: "list[dict]") -> ShapeCheck:
    """Entropy filtering is the cheapest method by modelled work (it
    trains the same number of models as a random filter but never needs
    ensembling)."""
    by_method = {}
    for r in rows:
        by_method.setdefault(r["method"], []).append(r["work_fraction"])
    means = {m: float(np.mean(v)) for m, v in by_method.items()}
    cheapest = min(means, key=means.get)
    return ShapeCheck(
        name="entropy filtering is cheapest",
        passed=cheapest == "entropy",
        detail=f"mean work fractions: { {m: round(v, 4) for m, v in means.items()} }",
    )


def check_diverse_work_near_half(rows: "list[dict]", tolerance: float = 0.2) -> ShapeCheck:
    """Diverse FRaC at p = 1/2 does ~half the full run's work (Table IV)."""
    vals = [r["work_fraction"] for r in _rows_for(rows, "diverse")]
    mean = float(np.mean(vals)) if vals else float("nan")
    return ShapeCheck(
        name="diverse work fraction ~ 0.5",
        passed=bool(vals) and abs(mean - 0.5) <= tolerance,
        detail=f"mean = {mean:.3f}",
    )


def check_autism_unlearnable(table2_rows: "list[dict]", slack: float = 0.12) -> ShapeCheck:
    """Full FRaC on autism hovers at AUC 0.5 (Table II)."""
    row = next((r for r in table2_rows if r["data set"] == "autism"), None)
    if row is None or row["auc"] is None:
        return ShapeCheck("autism AUC ~ 0.5", False, "autism row missing")
    auc = row["auc"].mean
    return ShapeCheck(
        name="autism AUC ~ 0.5",
        passed=abs(auc - 0.5) <= slack,
        detail=f"AUC = {auc:.3f}",
    )


def check_schizophrenia_ordering(table5_rows: "list[dict]") -> ShapeCheck:
    """Table V's ordering: entropy ~ 1.0 >= random ensemble >> JL."""
    by = {r["method"]: r["auc"].mean for r in table5_rows}
    entropy = by.get("entropy", float("nan"))
    rand = by.get("random_ensemble", float("nan"))
    jl = [v for m, v in by.items() if m.startswith("jl")]
    ok = (
        entropy >= 0.9
        and entropy >= rand - 0.05
        and bool(jl)
        and max(jl) <= rand + 0.1
    )
    return ShapeCheck(
        name="schizophrenia ordering entropy >= rand-ens > JL",
        passed=bool(ok),
        detail=f"entropy={entropy:.2f}, rand={rand:.2f}, jl={[round(v, 2) for v in jl]}",
    )


def check_fig3_improves_with_dimension(fig3_rows: "list[dict]", slack: float = 0.05) -> ShapeCheck:
    """Fig. 3: the largest JL dimension beats the smallest (within slack)."""
    if len(fig3_rows) < 2:
        return ShapeCheck("fig3 rises with dimension", False, "too few points")
    first, last = fig3_rows[0]["auc"].mean, fig3_rows[-1]["auc"].mean
    return ShapeCheck(
        name="fig3 rises with dimension",
        passed=last >= first - slack,
        detail=f"AUC {first:.3f} @first -> {last:.3f} @last",
    )


def run_all(
    *,
    table2_rows: "list[dict] | None" = None,
    table3_rows: "list[dict] | None" = None,
    table4_rows: "list[dict] | None" = None,
    table5_rows: "list[dict] | None" = None,
    fig3_rows: "list[dict] | None" = None,
) -> list[ShapeCheck]:
    """Run every check whose inputs were supplied."""
    checks: list[ShapeCheck] = []
    if table3_rows:
        checks.extend(check_variants_cost_less(table3_rows))
        checks.append(check_entropy_cheapest(table3_rows))
    if table4_rows:
        checks.append(check_diverse_work_near_half(table4_rows))
    if table2_rows:
        checks.append(check_autism_unlearnable(table2_rows))
    if table5_rows:
        checks.append(check_schizophrenia_ordering(table5_rows))
    if fig3_rows:
        checks.append(check_fig3_improves_with_dimension(fig3_rows))
    return checks
