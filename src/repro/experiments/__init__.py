"""Experiment harness: one driver per paper table/figure."""

from repro.experiments.figures import fig1_structure, fig2_preprojection
from repro.experiments.runners import (
    ALL_METHODS,
    EXTRA_METHODS,
    PAPER_METHODS,
    detector_factory,
    make_detector,
)
from repro.experiments.settings import (
    DEFAULT_BENCH_SCALE,
    StudySettings,
    default_study,
    smoke_study,
)
from repro.experiments.study import (
    RUNNABLE_DATASETS,
    TABLE3_METHODS,
    TABLE4_METHODS,
    average_fractions,
    extrapolate_full_cost,
    fig3_sweep,
    run_method_on_dataset,
    schizophrenia_full_estimate,
    table2,
    table3,
    table4,
    table5,
    variant_fraction_rows,
)
from repro.experiments.report import build_report, write_report
from repro.experiments.shapes import ShapeCheck, run_all as run_shape_checks
from repro.experiments.tables import render_ascii_series, render_table

__all__ = [
    "StudySettings",
    "default_study",
    "smoke_study",
    "DEFAULT_BENCH_SCALE",
    "PAPER_METHODS",
    "EXTRA_METHODS",
    "ALL_METHODS",
    "make_detector",
    "detector_factory",
    "RUNNABLE_DATASETS",
    "TABLE3_METHODS",
    "TABLE4_METHODS",
    "run_method_on_dataset",
    "table2",
    "table3",
    "table4",
    "table5",
    "variant_fraction_rows",
    "average_fractions",
    "extrapolate_full_cost",
    "schizophrenia_full_estimate",
    "fig3_sweep",
    "fig1_structure",
    "fig2_preprojection",
    "render_table",
    "render_ascii_series",
    "build_report",
    "write_report",
    "ShapeCheck",
    "run_shape_checks",
]
