"""Variant construction by name.

Maps the method names used in the paper's tables to configured detector
factories, given a study's settings and a data set's kind.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.baselines import LOFDetector, MahalanobisDetector, OneClassSVM, ZScoreDetector
from repro.core import (
    DiverseFRaC,
    FilteredFRaC,
    FRaC,
    JLFRaC,
    diverse_ensemble,
    random_filter_ensemble,
)
from repro.core.types import AnomalyDetector
from repro.experiments.settings import StudySettings
from repro.telemetry.runtime import get_bus
from repro.utils.exceptions import DataError

#: Methods appearing in the paper's result tables.
PAPER_METHODS = (
    "full",
    "random_ensemble",
    "jl",
    "entropy",
    "diverse",
    "diverse_ensemble",
)

#: Additional methods this library implements (paper §II mentions partial
#: filtering and single random filters; baselines come from the FRaC/CSAX
#: comparison papers).
EXTRA_METHODS = (
    "random_filter",
    "partial_filter",
    "lof",
    "ocsvm",
    "zscore",
    "mahalanobis",
)

ALL_METHODS = PAPER_METHODS + EXTRA_METHODS


def make_detector(
    method: str,
    dataset: str,
    settings: StudySettings,
    rng: "int | np.random.SeedSequence | None" = None,
    *,
    jl_components: "int | None" = None,
) -> AnomalyDetector:
    """Build one unfitted detector for ``method`` on ``dataset``."""
    bus = get_bus()
    if bus is not None:
        bus.metrics.counter("experiments.detectors_built").inc()
        bus.metrics.counter(f"experiments.method.{method}").inc()
    cfg = settings.config_for(dataset)
    if method == "full":
        return FRaC(cfg, rng=rng)
    if method == "random_ensemble":
        return random_filter_ensemble(
            p=settings.filter_p, n_members=settings.n_members, config=cfg, rng=rng
        )
    if method == "jl":
        return JLFRaC(
            n_components=jl_components or settings.jl_components, config=cfg, rng=rng
        )
    if method == "entropy":
        return FilteredFRaC(p=settings.filter_p, method="entropy", config=cfg, rng=rng)
    if method == "diverse":
        return DiverseFRaC(p=settings.diverse_p, config=cfg, rng=rng)
    if method == "diverse_ensemble":
        return diverse_ensemble(
            p=settings.diverse_ensemble_p,
            n_members=settings.n_members,
            config=cfg,
            rng=rng,
        )
    if method == "random_filter":
        return FilteredFRaC(p=settings.filter_p, method="random", config=cfg, rng=rng)
    if method == "partial_filter":
        return FilteredFRaC(
            p=settings.filter_p, method="random", mode="partial", config=cfg, rng=rng
        )
    if method == "lof":
        return LOFDetector()
    if method == "ocsvm":
        return OneClassSVM()
    if method == "zscore":
        return ZScoreDetector()
    if method == "mahalanobis":
        return MahalanobisDetector()
    raise DataError(f"unknown method {method!r}; available: {ALL_METHODS}")


def detector_factory(
    method: str,
    dataset: str,
    settings: StudySettings,
    **kwargs,
) -> Callable[[int, np.random.SeedSequence], AnomalyDetector]:
    """Factory usable with :func:`repro.eval.evaluate_on_replicates`."""

    def factory(i: int, seed: np.random.SeedSequence) -> AnomalyDetector:
        return make_detector(method, dataset, settings, rng=seed, **kwargs)

    return factory
