"""Ablation studies for the design choices the paper asserts but does not
tabulate.

- :func:`partial_vs_full_filtering` — §III-B1: "partial filtering was
  consistently worse than full filtering in time, space, and AUC
  preservation ... so partial filtering results are not presented".
- :func:`filter_fraction_instability` — §III-B1: "random filtering at
  small values, though fast, is not particularly stable, and results could
  vary wildly depending on exactly which features were kept. On some data
  sets, AUCs fell within an absolute range of up to .2".
- :func:`ensemble_size_stability` — the motivation for the 10-member
  ensembles: variance across seeds shrinks with ensemble size.
- :func:`jl_family_equivalence` — §I-A2: the JL matrix "may be ... Gaussian
  distributed or Uniform(-1,1) distributed" (plus Achlioptas' sparse
  construction); the dense families should behave alike. The fourth,
  ``"hashing"`` (count sketch), is this library's implementation of the
  paper's §IV future-work suggestion of discrete-structure-preserving
  preprocessing.
- :func:`frac_vs_baselines` — the robustness claim of the FRaC papers the
  introduction leans on: FRaC beats LOF / one-class SVM on
  relationship-structured anomalies.
"""

from __future__ import annotations

import numpy as np

from repro.core import FilteredFRaC, JLFRaC, random_filter_ensemble
from repro.data.compendium import load_replicates
from repro.eval.auc import auc_score
from repro.eval.stats import mean_std
from repro.experiments.settings import StudySettings
from repro.experiments.study import run_method_on_dataset
from repro.utils.rng import spawn_seeds


def _crc(text: str) -> int:
    import zlib

    return zlib.crc32(text.encode()) & 0x7FFFFFFF


def partial_vs_full_filtering(
    settings: StudySettings,
    datasets: tuple[str, ...] = ("biomarkers", "smokers2"),
) -> list[dict[str, object]]:
    """Full vs partial random filtering, as fractions of full FRaC.

    Expected shape (the paper's §III-B1 finding): partial filtering costs
    strictly more time and memory than full filtering at the same ``p``,
    without an AUC advantage worth it.
    """
    rows = []
    for dataset in datasets:
        full = run_method_on_dataset("full", dataset, settings)
        for method in ("random_filter", "partial_filter"):
            result = run_method_on_dataset(method, dataset, settings)
            rows.append(result.as_fraction_of(full))
    return rows


def filter_fraction_instability(
    settings: StudySettings,
    dataset: str = "biomarkers",
    fractions: tuple[float, ...] = (0.02, 0.05, 0.1, 0.2),
    n_seeds: int = 8,
) -> list[dict[str, object]]:
    """AUC spread of a *single* random filter across filter draws.

    One replicate, many filter seeds: the paper's observed absolute AUC
    range (up to 0.2 at small p) is the quantity reported per row.
    """
    replicates = load_replicates(
        dataset,
        1,
        scale=settings.scale,
        sample_scale=settings.sample_scale,
        rng=np.random.default_rng(np.random.SeedSequence([settings.seed, _crc(dataset)])),
    )
    rep = replicates[0]
    cfg = settings.config_for(dataset)
    rows = []
    for p in fractions:
        aucs = []
        for seed in spawn_seeds(np.random.SeedSequence([settings.seed, int(p * 1e6)]), n_seeds):
            det = FilteredFRaC(p=p, config=cfg, rng=seed).fit(rep.x_train, rep.schema)
            aucs.append(auc_score(rep.y_test, det.score(rep.x_test)))
        rows.append(
            {
                "p": p,
                "auc": mean_std(aucs),
                "auc_range": float(max(aucs) - min(aucs)),
            }
        )
    return rows


def ensemble_size_stability(
    settings: StudySettings,
    dataset: str = "biomarkers",
    sizes: tuple[int, ...] = (1, 3, 5, 10),
    n_seeds: int = 6,
) -> list[dict[str, object]]:
    """AUC spread of random-filter ensembles vs member count."""
    replicates = load_replicates(
        dataset,
        1,
        scale=settings.scale,
        sample_scale=settings.sample_scale,
        rng=np.random.default_rng(np.random.SeedSequence([settings.seed, _crc(dataset)])),
    )
    rep = replicates[0]
    cfg = settings.config_for(dataset)
    rows = []
    for m in sizes:
        aucs = []
        for seed in spawn_seeds(np.random.SeedSequence([settings.seed, m]), n_seeds):
            ens = random_filter_ensemble(
                p=settings.filter_p, n_members=m, config=cfg, rng=seed
            )
            ens.fit(rep.x_train, rep.schema)
            aucs.append(auc_score(rep.y_test, ens.score(rep.x_test)))
        rows.append(
            {
                "members": m,
                "auc": mean_std(aucs),
                "auc_range": float(max(aucs) - min(aucs)),
            }
        )
    return rows


def jl_family_equivalence(
    settings: StudySettings,
    dataset: str = "biomarkers",
    kinds: tuple[str, ...] = ("gaussian", "uniform", "sparse", "hashing"),
    n_seeds: int = 5,
) -> list[dict[str, object]]:
    """AUC of JL pre-projection under the three matrix constructions."""
    replicates = load_replicates(
        dataset,
        1,
        scale=settings.scale,
        sample_scale=settings.sample_scale,
        rng=np.random.default_rng(np.random.SeedSequence([settings.seed, _crc(dataset)])),
    )
    rep = replicates[0]
    cfg = settings.config_for(dataset)
    rows = []
    for kind in kinds:
        aucs = []
        for seed in spawn_seeds(np.random.SeedSequence([settings.seed, _crc(kind)]), n_seeds):
            det = JLFRaC(
                n_components=settings.jl_components, kind=kind, config=cfg, rng=seed
            )
            det.fit(rep.x_train, rep.schema)
            aucs.append(auc_score(rep.y_test, det.score(rep.x_test)))
        rows.append({"kind": kind, "auc": mean_std(aucs)})
    return rows


def snp_learner_comparison(
    settings: StudySettings,
    dataset: str = "schizophrenia",
    learners: tuple[str, ...] = ("tree", "naive_bayes", "knn", "linear_svc"),
    p: float = 0.1,
) -> list[dict[str, object]]:
    """Classifier families on discrete SNP data (paper §III-B).

    "In initial experiments, SVMs did not appear to work well on the
    discrete SNP data, taking more time and space to compute while
    producing less accurate anomaly scores compared to decision tree
    models." This ablation re-runs that comparison: a random-filter FRaC
    (to keep SVC affordable) with each classifier family, same replicate.
    """
    from repro.core.config import FRaCConfig

    replicates = load_replicates(
        dataset,
        1,
        scale=settings.scale,
        sample_scale=settings.sample_scale,
        rng=np.random.default_rng(np.random.SeedSequence([settings.seed, _crc(dataset)])),
    )
    rep = replicates[0]
    base = settings.config_for(dataset)
    rows = []
    for learner in learners:
        params: dict = {"max_depth": 6} if learner == "tree" else {}
        cfg = FRaCConfig(
            **{
                **{f: getattr(base, f) for f in base.__dataclass_fields__},
                "classifier": learner,
                "classifier_params": params,
            }
        )
        det = FilteredFRaC(
            p=p, config=cfg,
            rng=np.random.SeedSequence([settings.seed, _crc(learner)]),
        )
        det.fit(rep.x_train, rep.schema)
        auc = auc_score(rep.y_test, det.score(rep.x_test))
        res = det.resources
        rows.append(
            {
                "classifier": learner,
                "auc": round(float(auc), 3),
                "cpu_s": round(res.cpu_seconds, 2),
                "mem_mb": round(res.memory_bytes / 1e6, 3),
            }
        )
    return rows


def frac_vs_baselines(
    settings: StudySettings,
    datasets: tuple[str, ...] = ("breast.basal", "biomarkers"),
    methods: tuple[str, ...] = ("full", "lof", "ocsvm", "zscore", "mahalanobis"),
) -> list[dict[str, object]]:
    """FRaC against the competing detectors of the FRaC/CSAX papers."""
    rows = []
    for dataset in datasets:
        for method in methods:
            result = run_method_on_dataset(method, dataset, settings)
            rows.append(
                {"data set": dataset, "method": method, "auc": result.auc}
            )
    return rows
