"""Plain-text rendering of experiment rows (the benches' output format)."""

from __future__ import annotations

from typing import Sequence

from repro.eval.stats import MeanStd


def _format_cell(value: object) -> str:
    if value is None:
        return "N/A"
    if isinstance(value, MeanStd):
        return str(value)
    if isinstance(value, bool):
        return "est." if value else ""
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.4f}"
        return f"{value:.3f}"
    if isinstance(value, int) and value > 10_000:
        # Byte counts etc.: render with thousands separators.
        return f"{value:,}"
    return str(value)


def render_table(
    rows: Sequence[dict[str, object]],
    columns: "Sequence[str] | None" = None,
    title: str = "",
) -> str:
    """Aligned text table from a list of row dicts."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = list(columns) if columns else list(rows[0].keys())
    cells = [[_format_cell(r.get(c)) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_ascii_series(
    rows: Sequence[dict[str, object]],
    x_key: str,
    y_key: str,
    *,
    width: int = 50,
    title: str = "",
) -> str:
    """A tiny ASCII rendition of a figure series (mean +- std bars)."""
    if not rows:
        return "(empty)"
    means = []
    stds = []
    for r in rows:
        y = r[y_key]
        if isinstance(y, MeanStd):
            means.append(y.mean)
            stds.append(y.std)
        else:
            means.append(float(y))
            stds.append(0.0)
    lo = min(m - s for m, s in zip(means, stds))
    hi = max(m + s for m, s in zip(means, stds))
    span = (hi - lo) or 1.0
    lines = [title] if title else []
    for r, m, s in zip(rows, means, stds):
        pos = int((m - lo) / span * (width - 1))
        bar = [" "] * width
        lo_i = int((max(m - s, lo) - lo) / span * (width - 1))
        hi_i = int((min(m + s, hi) - lo) / span * (width - 1))
        for i in range(lo_i, hi_i + 1):
            bar[i] = "-"
        bar[pos] = "o"
        lines.append(f"{str(r[x_key]):>10} |{''.join(bar)}| {m:.3f} (+-{s:.3f})")
    return "\n".join(lines)
