"""Figure reproductions that are structural rather than numeric.

- Figure 1 depicts *which features feed which predictors* under each
  variant; :func:`fig1_structure` extracts exactly that wiring from fitted
  detectors on a small example and renders it as a matrix of marks.
- Figure 2 walks one sample through 1-hot encoding, concatenation, and a
  JL projection; :func:`fig2_preprojection` reruns the paper's literal
  example.
"""

from __future__ import annotations

import numpy as np

from repro.core import DiverseFRaC, FilteredFRaC, FRaC, FRaCConfig
from repro.data.schema import FeatureKind, FeatureSchema, FeatureSpec
from repro.projection.jl import JLTransform
from repro.projection.onehot import OneHotEncoder
from repro.utils.rng import as_generator


def _wiring_marks(structure: dict[int, np.ndarray], n_features: int) -> list[str]:
    """Render a target -> inputs map as rows of x/. marks."""
    lines = []
    for target in sorted(structure):
        inputs = set(int(i) for i in structure[target])
        marks = "".join(
            "T" if j == target else ("x" if j in inputs else ".")
            for j in range(n_features)
        )
        lines.append(f"f{target}: {marks}")
    return lines


def fig1_structure(
    n_features: int = 8,
    n_samples: int = 24,
    rng: "int | np.random.Generator | None" = 0,
) -> dict[str, list[str]]:
    """Fit plain/full-filter/partial-filter/diverse FRaC on an
    ``n_features``-feature toy set and report each variant's wiring
    (the content of the paper's Figure 1)."""
    gen = as_generator(rng)
    x = gen.standard_normal((n_samples, n_features))
    schema = FeatureSchema.all_real(n_features)
    cfg = FRaCConfig.fast()
    variants = {
        "ordinary FRaC": FRaC(cfg, rng=gen.integers(2**31)),
        "full filtering (p=0.5)": FilteredFRaC(p=0.5, config=cfg, rng=gen.integers(2**31)),
        "partial filtering (p=0.5)": FilteredFRaC(
            p=0.5, mode="partial", config=cfg, rng=gen.integers(2**31)
        ),
        "diverse (p=0.5)": DiverseFRaC(p=0.5, config=cfg, rng=gen.integers(2**31)),
    }
    out = {}
    for name, det in variants.items():
        det.fit(x, schema)
        out[name] = _wiring_marks(det.structure(), n_features)
    return out


def fig2_preprojection(rng: "int | np.random.Generator | None" = 0) -> dict[str, object]:
    """The paper's Figure 2 worked example.

    Schema: four real features, one ternary categorical, one 4-ary
    categorical; datum ``(3.4, 0, -2, 0.6, 1, 2)``; 1-hot + concatenation
    gives an 11-vector; an 11 -> 4 JL transform yields the projected datum.
    """
    schema = FeatureSchema(
        [FeatureSpec(FeatureKind.REAL)] * 4
        + [
            FeatureSpec(FeatureKind.CATEGORICAL, arity=3),
            FeatureSpec(FeatureKind.CATEGORICAL, arity=4),
        ]
    )
    datum = np.array([[3.4, 0.0, -2.0, 0.6, 1.0, 2.0]])
    encoder = OneHotEncoder(schema)
    encoded = encoder.transform(datum)
    jl = JLTransform(4, kind="uniform", rng=rng).fit(encoder.width)
    projected = jl.transform(encoded)
    return {
        "schema": [
            "R" if s.is_real else f"{{0..{s.arity - 1}}}" for s in schema
        ],
        "datum": datum[0].tolist(),
        "one_hot_concatenated": encoded[0].tolist(),
        "jl_shape": jl.matrix_.shape,
        "projected": projected[0].tolist(),
    }
