"""One-command reproduction report.

``build_report(settings)`` runs every table and figure driver and
assembles a single markdown document recording measured results next to
the paper's values — the machine-generated companion to EXPERIMENTS.md.
Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

from pathlib import Path

from repro.data.compendium import COMPENDIUM, table1_rows
from repro.experiments.figures import fig1_structure, fig2_preprojection
from repro.experiments.settings import StudySettings
from repro.experiments.study import (
    average_fractions,
    fig3_sweep,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.tables import render_ascii_series, render_table

#: The paper's reference values, quoted inline in the report.
PAPER_NOTES = {
    "table2": "Paper Table II AUCs: breast.basal 0.73, biomarkers 0.88, "
    "ethnic 0.71, bild 0.84, smokers2 0.66, hematopoiesis 0.88, autism 0.50.",
    "table3": "Paper Table III averages: random-ens 1.02/0.078/0.007, "
    "JL 1.00/0.040/0.092, entropy 0.95/0.007/0.009 (AUC%/time%/mem%).",
    "table4": "Paper Table IV averages: diverse 1.01/0.346/0.641, "
    "diverse-ens 1.02/0.365/0.543 (AUC%/time%/mem%).",
    "table5": "Paper Table V: entropy 1.00, random-ens 0.86, "
    "JL 0.55 -> 0.63 -> 0.64 at 1024/2048/4096 dims.",
    "fig3": "Paper Fig. 3: 0.55 (0.08) @1024, 0.63 (0.09) @2048, 0.64 (0.08) @4096.",
}


def _section(title: str, body: str, note: str = "") -> str:
    parts = [f"## {title}", "", "```", body, "```"]
    if note:
        parts += ["", f"> {note}"]
    return "\n".join(parts)


def build_report(
    settings: StudySettings,
    *,
    include: "tuple[str, ...] | None" = None,
    fig3_projections: int = 10,
) -> str:
    """Assemble the full reproduction report as markdown.

    ``include`` restricts the artifact set (names: table1..table5, fig1,
    fig2, fig3); default is everything.
    """
    include = include or ("table1", "table2", "table3", "table4", "table5",
                          "fig1", "fig2", "fig3")
    sections = [
        "# Reproduction report",
        "",
        f"Settings: scale={settings.scale:.6g}, sample_scale={settings.sample_scale}, "
        f"replicates={settings.n_replicates}, seed={settings.seed}.",
        "",
        "Cost columns: work% is the modelled operation-count fraction (the "
        "paper-comparable 'Time %'); time% is measured CPU on this "
        "interpreter; mem% is the analytic memory model. See EXPERIMENTS.md.",
    ]

    if "table1" in include:
        rows = table1_rows(scale=settings.scale, sample_scale=settings.sample_scale)
        sections.append(_section("Table I — data sets (at this scale)", render_table(rows)))

    if "table2" in include:
        rows = table2(settings)
        for row in rows:
            row["paper AUC"] = COMPENDIUM[row["data set"]].paper_full_auc
        sections.append(
            _section(
                "Table II — full FRaC",
                render_table(rows, columns=["data set", "auc", "paper AUC",
                                            "time_s", "mem_bytes", "estimated"]),
                PAPER_NOTES["table2"],
            )
        )

    if "table3" in include:
        rows = table3(settings)
        body = render_table(rows) + "\n\n" + render_table(average_fractions(rows))
        sections.append(_section("Table III — filter / JL / entropy", body, PAPER_NOTES["table3"]))

    if "table4" in include:
        rows = table4(settings)
        body = render_table(rows) + "\n\n" + render_table(average_fractions(rows))
        sections.append(_section("Table IV — diverse variants", body, PAPER_NOTES["table4"]))

    if "table5" in include:
        rows = table5(settings)
        sections.append(_section("Table V — schizophrenia", render_table(rows), PAPER_NOTES["table5"]))

    if "fig1" in include:
        blocks = []
        for name, lines in fig1_structure(rng=settings.seed).items():
            blocks.append(name + "\n" + "\n".join("  " + l for l in lines))
        sections.append(_section("Figure 1 — variant wiring", "\n\n".join(blocks)))

    if "fig2" in include:
        out = fig2_preprojection(rng=settings.seed)
        body = "\n".join(
            [
                f"schema: {out['schema']}",
                f"datum:  {out['datum']}",
                f"1-hot:  {out['one_hot_concatenated']}",
                f"JL:     {out['jl_shape'][0]} x {out['jl_shape'][1]} random map",
                f"result: {[round(v, 3) for v in out['projected']]}",
            ]
        )
        sections.append(_section("Figure 2 — preprojection example", body))

    if "fig3" in include:
        rows = fig3_sweep(settings, n_projections=fig3_projections)
        body = render_table(rows) + "\n\n" + render_ascii_series(rows, "scaled_dim", "auc")
        sections.append(_section("Figure 3 — JL dimension sweep", body, PAPER_NOTES["fig3"]))

    return "\n\n".join(sections) + "\n"


def write_report(settings: StudySettings, path: "str | Path", **kwargs) -> Path:
    """Build the report and write it to ``path``."""
    path = Path(path)
    path.write_text(build_report(settings, **kwargs), encoding="utf-8")
    return path
