"""Study settings: how the paper's experiments are scaled to this machine.

The paper's full runs took up to thousands of CPU hours; this reproduction
shrinks the *feature dimension* by ``scale`` (and optionally the sample
counts by ``sample_scale``) while keeping every protocol element intact:
5 replicates, 2/3-normal training splits, 10-member ensembles, p = 0.05
filters, diverse p = 1/2 (ensembles p = 1/20), and JL dimensions scaled by
the same factor as the features so the k/d ratio — which drives both cost
and signal mixing — is preserved. Fractions-of-full are ratio quantities
and survive the scaling (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.config import FRaCConfig
from repro.data.compendium import COMPENDIUM
from repro.parallel.faults import RetryPolicy
from repro.utils.exceptions import DataError

#: Feature scale used by the shipped benchmarks (1/64 of the paper's
#: feature counts; e.g. biomarkers 19739 -> 308 features).
DEFAULT_BENCH_SCALE = 1.0 / 64.0


@dataclass(frozen=True)
class StudySettings:
    """Everything a table/figure run needs to know.

    Attributes
    ----------
    scale, sample_scale:
        Geometry shrink factors applied to the compendium.
    n_replicates:
        Replicates per data set (the paper uses 5).
    filter_p:
        Kept fraction for filtering runs (paper: 0.05).
    n_members:
        Ensemble size (paper: 10).
    diverse_p / diverse_ensemble_p:
        Input-keep probability for diverse FRaC (paper: 1/2 standalone,
        1/20 inside ensembles).
    jl_components:
        Baseline projected dimension, already scaled (paper: 1024 at full
        scale). :meth:`jl_dim` derives the Fig-3 sweep points from it.
    expression_config / snp_config:
        Engine settings per data kind. SNP runs keep the paper's decision
        trees (§III-B). Expression runs default to ridge regressors: ridge
        is the linear SVR's squared-loss twin (same linear hypothesis
        class, same standardized inputs) with a *batched* multi-output
        implementation — one Gram factorization per feature group instead
        of one iterative dual solve per feature — which is what the
        study's throughput target rides on (ROADMAP Open item 1). Pass
        ``expression_config=FRaCConfig.paper_expression()`` to restore the
        paper's exact SVR setting.
    max_retries / task_timeout:
        Fault tolerance for every engine run in the study: when either is
        set, per-feature work items retry up to ``max_retries`` times
        (items hung past ``task_timeout`` seconds are recycled) and
        features that still fail are skipped with a recorded
        :class:`repro.parallel.FailureReport` instead of aborting the run
        (docs/scaling.md, "Fault tolerance").
    seed:
        Root seed for the whole study.
    """

    scale: float = DEFAULT_BENCH_SCALE
    sample_scale: float = 1.0
    n_replicates: int = 5
    filter_p: float = 0.05
    n_members: int = 10
    diverse_p: float = 0.5
    diverse_ensemble_p: float = 1.0 / 20.0
    jl_components: int = 0  # 0 -> derived from scale in __post_init__
    expression_config: FRaCConfig = field(
        default_factory=lambda: FRaCConfig(regressor="ridge", classifier="tree")
    )
    snp_config: FRaCConfig = field(
        default_factory=lambda: FRaCConfig(
            regressor="tree_regressor",
            classifier="tree",
            classifier_params={"max_depth": 6},
            regressor_params={"max_depth": 6},
        )
    )
    max_retries: int = 0
    task_timeout: "float | None" = None
    seed: int = 2017

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0 or not 0.0 < self.sample_scale <= 1.0:
            raise DataError("scale factors must lie in (0, 1]")
        if self.max_retries < 0:
            raise DataError(f"max_retries must be >= 0; got {self.max_retries}")
        if self.jl_components == 0:
            object.__setattr__(self, "jl_components", max(8, int(round(1024 * self.scale))))

    @property
    def retry_policy(self) -> "RetryPolicy | None":
        """The study-wide retry policy, or ``None`` for fail-fast runs."""
        if self.max_retries == 0 and self.task_timeout is None:
            return None
        return RetryPolicy(
            max_retries=self.max_retries,
            task_timeout=self.task_timeout,
            on_exhaustion="skip",
        )

    @property
    def jl_accuracy_components(self) -> int:
        """The accuracy-faithful projected dimension at this scale.

        The JL lemma's required dimension depends on the *sample count*
        (unchanged by feature scaling), not the input dimension, so the
        paper's k = 1024 should not shrink linearly with the features. At
        reduced scale the two desiderata separate: ``jl_components``
        (k ~ 1024 * scale) preserves the paper's *cost* fractions, while
        this sqrt-scaled dimension preserves its *accuracy* fractions; at
        full scale both coincide at 1024. Table III reports both rows.
        """
        return max(8, int(round(1024 * np.sqrt(self.scale))))

    def config_for(self, dataset: str) -> FRaCConfig:
        """The paper's per-kind engine settings (SVMs vs trees), with the
        study's retry policy applied to the execution config."""
        try:
            kind = COMPENDIUM[dataset].kind
        except KeyError:
            raise DataError(f"unknown data set {dataset!r}") from None
        cfg = self.expression_config if kind == "expression" else self.snp_config
        policy = self.retry_policy
        if policy is not None and cfg.execution.retry != policy:
            cfg = replace(cfg, execution=replace(cfg.execution, retry=policy))
        return cfg

    def jl_dim(self, paper_dim: int) -> int:
        """A paper JL dimension (1024/2048/4096) scaled to this study."""
        return max(4, int(round(self.jl_components * paper_dim / 1024.0)))

    def to_metadata(self) -> dict:
        """JSON-safe digest of the study geometry for run records.

        Embedded in ``RunStarted.meta`` by the experiment runners and in
        persisted-artifact metadata, so a trace file or pickle records
        which scaling regime produced it. Engine configs are reduced to
        their learner names — the full objects live in the artifact
        itself; this digest is for telemetry and provenance lines.
        """
        return {
            "scale": float(self.scale),
            "sample_scale": float(self.sample_scale),
            "n_replicates": int(self.n_replicates),
            "filter_p": float(self.filter_p),
            "n_members": int(self.n_members),
            "diverse_p": float(self.diverse_p),
            "diverse_ensemble_p": float(self.diverse_ensemble_p),
            "jl_components": int(self.jl_components),
            "expression_learners": [
                self.expression_config.regressor,
                self.expression_config.classifier,
            ],
            "snp_learners": [
                self.snp_config.regressor,
                self.snp_config.classifier,
            ],
            "max_retries": int(self.max_retries),
            "task_timeout": (
                None if self.task_timeout is None else float(self.task_timeout)
            ),
            "seed": int(self.seed),
        }


def default_study(**overrides) -> StudySettings:
    """Bench-scale settings (what the shipped benchmarks run)."""
    return StudySettings(**overrides)


def smoke_study(**overrides) -> StudySettings:
    """Tiny settings for tests: minimal features, 2 replicates, fast
    learners. Shapes still hold qualitatively; runs in seconds."""
    defaults = dict(
        scale=1.0 / 400.0,
        sample_scale=0.5,
        n_replicates=2,
        n_members=4,
        expression_config=FRaCConfig.fast(),
        snp_config=FRaCConfig.fast(
            regressor="tree_regressor",
            regressor_params={"max_depth": 3},
            classifier_params={"max_depth": 3},
        ),
    )
    defaults.update(overrides)
    return StudySettings(**defaults)
