"""Core data types shared by the FRaC engine and its variants."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errormodels.base import ErrorModel
from repro.parallel.resources import ResourceReport
from repro.utils.exceptions import DataError


@dataclass
class FeatureModel:
    """Everything FRaC keeps for one (feature, predictor) pair.

    Attributes
    ----------
    feature_id:
        Index of the modelled (target) feature in the caller's feature
        space — original data-set columns for filtering/diverse variants,
        projected components for the JL variant.
    input_ids:
        Indices of the features this predictor consumes.
    predictor:
        The fitted supervised model (refit on the full training set after
        the CV pass, per the FRaC protocol).
    error_model:
        Fitted on the CV-holdout (prediction, truth) pairs.
    entropy:
        ``H(f_i)`` estimated from the training set (nats).
    cv_mean_surprisal:
        Mean surprisal of the CV holdout pairs under the fitted error
        model; a model-quality diagnostic (low = feature is predictable).
        Used by the interpretability report to rank predictive models.
    """

    feature_id: int
    input_ids: np.ndarray
    predictor: object
    error_model: ErrorModel
    entropy: float
    cv_mean_surprisal: float = float("nan")


@dataclass(frozen=True)
class ContributionMatrix:
    """Per-sample, per-feature NS contributions.

    ``values[s, t]`` is ``-ln P(x_t | prediction) - H(f_t)`` for test sample
    ``s`` and target slot ``t`` (zero where the test value is missing —
    the "otherwise: 0" branch of the NS definition). ``feature_ids[t]``
    names the feature each slot models; with multiple predictors per
    feature the same id appears in several slots and their contributions
    add, matching the double sum in the NS formula.
    """

    values: np.ndarray
    feature_ids: np.ndarray

    def __post_init__(self) -> None:
        if self.values.ndim != 2:
            raise DataError(f"contribution values must be 2-D; got {self.values.shape}")
        if self.feature_ids.shape != (self.values.shape[1],):
            raise DataError(
                f"{self.values.shape[1]} contribution columns but "
                f"{self.feature_ids.shape} feature ids"
            )

    @property
    def n_samples(self) -> int:
        return self.values.shape[0]

    def ns_scores(self) -> np.ndarray:
        """Normalized surprisal per sample (the anomaly criterion)."""
        return self.values.sum(axis=1)


class AnomalyDetector(ABC):
    """Uniform interface for FRaC, its variants, and the baselines."""

    @abstractmethod
    def fit(self, x_train: np.ndarray, schema) -> "AnomalyDetector":
        """Train on an all-normal training matrix."""

    @abstractmethod
    def score(self, x_test: np.ndarray) -> np.ndarray:
        """Anomaly score per test sample; higher = more anomalous."""

    @property
    def resources(self) -> ResourceReport:
        """Cost of the last fit+score cycle (overridden by FRaC family)."""
        return ResourceReport(cpu_seconds=0.0, memory_bytes=0)
