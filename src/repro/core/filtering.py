"""Feature filtering (paper §II-A): random and entropy criteria.

A filter ranks features by some property and keeps a fraction ``p``:

- *random* filtering keeps a uniform random subset (the paper's most
  effective criterion on most data sets);
- *entropy* filtering keeps the highest-entropy features (discrete plug-in
  entropy for categorical features, KDE differential entropy for real
  ones) — inconsistent in the paper, but spectacular on the confounded
  schizophrenia data.

*Full* filtering (models only see kept features) and *partial* filtering
(models for kept features, trained on all features) are expressed as FRaC
wiring in :class:`FilteredFRaC`.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FRaCConfig
from repro.core.frac import FRaC, subset_selector
from repro.core.types import AnomalyDetector, ContributionMatrix
from repro.data.schema import FeatureSchema
from repro.errormodels.entropy import dataset_entropies
from repro.parallel.resources import ResourceReport
from repro.utils.exceptions import DataError, NotFittedError
from repro.utils.rng import as_generator, spawn_seeds
from repro.utils.validation import check_2d, check_probability

FILTER_METHODS = ("random", "entropy")
FILTER_MODES = ("full", "partial")


def filter_size(n_features: int, p: float) -> int:
    """Number of kept features at fraction ``p`` (at least 2, so kept
    features can still predict each other under full filtering)."""
    return max(2, int(round(p * n_features)))


def random_filter(
    n_features: int, p: float, rng: "int | np.random.Generator | None" = None
) -> np.ndarray:
    """Uniformly random kept-feature subset (sorted)."""
    check_probability(p, "p")
    gen = as_generator(rng)
    k = filter_size(n_features, p)
    return np.sort(gen.choice(n_features, size=k, replace=False))


def entropy_filter(x_train: np.ndarray, schema: FeatureSchema, p: float) -> np.ndarray:
    """Keep the top-``p`` fraction of features by training-set entropy."""
    check_probability(p, "p")
    x_train = check_2d(x_train, "x_train")
    entropies = dataset_entropies(x_train, schema)
    k = filter_size(len(schema), p)
    # Highest entropy first; stable tie-break by feature index.
    order = np.lexsort((np.arange(len(schema)), -entropies))
    return np.sort(order[:k])


class FilteredFRaC(AnomalyDetector):
    """FRaC on a filtered feature set (paper §II-A).

    Parameters
    ----------
    p:
        Fraction of features kept.
    method:
        ``"random"`` or ``"entropy"``.
    mode:
        ``"full"`` — kept features are both targets and the only inputs
        (the paper's headline filtering variant); ``"partial"`` — kept
        features are targets but models train on *all* features (evaluated
        in the paper, found inferior; provided for completeness).
    config, rng:
        Passed to the inner :class:`FRaC`.
    """

    def __init__(
        self,
        p: float = 0.05,
        method: str = "random",
        mode: str = "full",
        config: "FRaCConfig | None" = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        check_probability(p, "p")
        if method not in FILTER_METHODS:
            raise DataError(f"method must be one of {FILTER_METHODS}; got {method!r}")
        if mode not in FILTER_MODES:
            raise DataError(f"mode must be one of {FILTER_MODES}; got {mode!r}")
        self.p = float(p)
        self.method = method
        self.mode = mode
        self.config = config or FRaCConfig()
        self._rng = rng
        self.kept_features_: "np.ndarray | None" = None
        self._inner: "FRaC | None" = None

    def fit(self, x_train: np.ndarray, schema: FeatureSchema) -> "FilteredFRaC":
        x_train = check_2d(x_train, "x_train")
        seed_select, seed_inner = spawn_seeds(self._rng, 2)
        if self.method == "random":
            kept = random_filter(len(schema), self.p, np.random.default_rng(seed_select))
        else:
            kept = entropy_filter(x_train, schema, self.p)
        self.kept_features_ = kept
        if self.mode == "full":
            # Only kept columns are resident: models never touch the rest.
            self._inner = FRaC(
                self.config,
                target_features=kept,
                input_selector=subset_selector(kept),
                resident_features=len(kept),
                rng=seed_inner,
            )
        else:
            self._inner = FRaC(self.config, target_features=kept, rng=seed_inner)
        self._inner.fit(x_train, schema)
        return self

    def contributions(self, x_test: np.ndarray) -> ContributionMatrix:
        self._check_fitted()
        return self._inner.contributions(x_test)

    def score(self, x_test: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return self._inner.score(x_test)

    def structure(self) -> dict[int, np.ndarray]:
        self._check_fitted()
        return self._inner.structure()

    @property
    def resources(self) -> ResourceReport:
        self._check_fitted()
        return self._inner.resources

    def model_quality(self) -> np.ndarray:
        self._check_fitted()
        return self._inner.model_quality()

    def _check_fitted(self) -> None:
        if self._inner is None:
            raise NotFittedError("FilteredFRaC is not fitted; call fit() first")
