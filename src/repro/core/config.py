"""FRaC configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.parallel.executor import ExecutionConfig
from repro.utils.exceptions import DataError


@dataclass(frozen=True)
class FRaCConfig:
    """Hyper-parameters of a FRaC run.

    Attributes
    ----------
    n_folds:
        Cross-validation folds used to gather (prediction, truth) pairs for
        the error models (paper §I-A1). Capped at the number of usable
        training rows per feature.
    regressor / classifier:
        Registry names of the per-feature learners (see
        :mod:`repro.learners.registry`). The paper's settings are
        ``"linear_svr"`` for expression data and ``"tree"`` for SNP data;
        ``"ridge"`` is a fast drop-in for the SVR in tests.
    regressor_params / classifier_params:
        Extra constructor arguments for the learners.
    n_predictors:
        Predictors trained per feature (the ``j`` sum of the NS formula).
        Plain FRaC uses 1; diverse FRaC can use more, each drawing its own
        input subset.
    standardize:
        Standardize real features with training statistics before
        modelling (keeps SVR hyper-parameters meaningful across features;
        NS itself is invariant to per-feature affine rescaling).
    confusion_smoothing:
        Laplace pseudo-count of the categorical error model.
    sigma_floor:
        Scale floor of the Gaussian error model (in standardized units).
    min_observed:
        Features with fewer observed training values are skipped entirely
        (they cannot support CV).
    batched_training:
        Route real-valued feature tasks through the batched executor path
        (:func:`repro.core.engine.run_feature_batch`) whenever the
        configured regressor advertises a batched implementation
        (:data:`repro.learners.registry.BATCHED_REGRESSORS`). The batched
        path is proven byte-identical to the per-feature path
        (tests/core/test_batched_equivalence.py), so this flag trades
        nothing but wall clock; it exists so the equivalence suite can
        force the per-feature reference path.
    execution:
        How the per-feature work items are mapped (serial/thread/process).
    """

    n_folds: int = 5
    regressor: str = "linear_svr"
    classifier: str = "tree"
    regressor_params: Mapping[str, object] = field(default_factory=dict)
    classifier_params: Mapping[str, object] = field(default_factory=dict)
    n_predictors: int = 1
    standardize: bool = True
    confusion_smoothing: float = 1.0
    sigma_floor: float = 1e-3
    min_observed: int = 4
    batched_training: bool = True
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)

    def __post_init__(self) -> None:
        if self.n_folds < 2:
            raise DataError(f"n_folds must be >= 2; got {self.n_folds}")
        if self.n_predictors < 1:
            raise DataError(f"n_predictors must be >= 1; got {self.n_predictors}")
        if self.min_observed < 2:
            raise DataError(f"min_observed must be >= 2; got {self.min_observed}")
        if self.sigma_floor <= 0:
            raise DataError(f"sigma_floor must be positive; got {self.sigma_floor}")

    @classmethod
    def paper_expression(cls, **overrides) -> "FRaCConfig":
        """The paper's expression-data setting: linear SVM predictors."""
        defaults = dict(regressor="linear_svr", classifier="tree")
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def paper_snp(cls, **overrides) -> "FRaCConfig":
        """The paper's SNP-data setting: decision-tree predictors.

        Trees also serve as the regressor so that JL pre-projection on SNP
        data models the (all-real) projected space with trees — the paper's
        §IV setup, and its hypothesis for JL's weakness on discrete data.
        """
        defaults = dict(regressor="tree_regressor", classifier="tree")
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def fast(cls, **overrides) -> "FRaCConfig":
        """A cheap configuration for tests: ridge + shallow trees."""
        defaults = dict(
            regressor="ridge",
            classifier="tree",
            classifier_params={"max_depth": 4},
            n_folds=3,
        )
        defaults.update(overrides)
        return cls(**defaults)
