"""The FRaC anomaly detector (Noto, Brodley & Slonim 2010/2012).

FRaC trains one supervised model per feature, predicting that feature from
(a configurable subset of) the others, converts prediction errors into
surprisal via cross-validated error models, and scores a sample by the
*normalized surprisal*: the summed surprisal minus feature entropies.

The ``target_features`` / ``input_selector`` hooks are what the scalable
variants of the paper plug into:

- plain FRaC: all features are targets, every other feature is an input;
- full filtering: targets = kept subset, inputs = kept subset;
- partial filtering: targets = kept subset, inputs = all features;
- diverse FRaC: all targets, inputs drawn at random per feature.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.core.config import FRaCConfig
from repro.core.engine import (
    FeatureTask,
    SharedTrainState,
    run_feature_tasks,
    score_contributions,
)
from repro.core.imputation import Preprocessor
from repro.core.types import AnomalyDetector, ContributionMatrix, FeatureModel
from repro.data.schema import FeatureSchema
from repro.parallel.faults import FailureReport, FaultPlan
from repro.parallel.resources import ResourceLog, ResourceReport, design_matrix_bytes
from repro.telemetry.events import RunFinished, RunStarted, ScoreComputed
from repro.telemetry.runtime import get_bus
from repro.telemetry.spans import span
from repro.utils.exceptions import DataError, NotFittedError
from repro.utils.logging import get_logger
from repro.utils.rng import spawn_seeds
from repro.utils.validation import check_2d

_log = get_logger("core.frac")

#: An input selector maps (target feature id, predictor slot, generator) to
#: the array of input feature ids for that predictor.
InputSelector = Callable[[int, int, np.random.Generator], np.ndarray]


# Selectors are small picklable callables (not closures) so fitted
# detectors can be persisted with repro.persistence.


class _AllOthersSelector:
    def __init__(self, n_features: int) -> None:
        self.n_features = int(n_features)

    def __call__(self, target: int, slot: int, gen: np.random.Generator) -> np.ndarray:
        return np.delete(np.arange(self.n_features), target)


class _SubsetSelector:
    def __init__(self, kept: np.ndarray) -> None:
        self.kept = np.asarray(kept, dtype=np.intp)

    def __call__(self, target: int, slot: int, gen: np.random.Generator) -> np.ndarray:
        return self.kept[self.kept != target]


class _FixedInputsSelector:
    def __init__(self, input_ids: np.ndarray) -> None:
        self.input_ids = np.asarray(input_ids, dtype=np.intp)
        if len(self.input_ids) == 0:
            raise DataError("fixed input set is empty; nothing to predict from")

    def __call__(self, target: int, slot: int, gen: np.random.Generator) -> np.ndarray:
        if target in self.input_ids:
            raise DataError(
                f"fixed input set contains target feature {target}; "
                "targets cannot predict themselves"
            )
        return self.input_ids


class _DiverseSelector:
    def __init__(self, n_features: int, p: float) -> None:
        if not 0.0 < p <= 1.0:
            raise DataError(f"diverse probability p must lie in (0, 1]; got {p}")
        self.n_features = int(n_features)
        self.p = float(p)

    def __call__(self, target: int, slot: int, gen: np.random.Generator) -> np.ndarray:
        others = np.delete(np.arange(self.n_features), target)
        mask = gen.random(len(others)) < self.p
        chosen = others[mask]
        if len(chosen) == 0:
            # Guarantee at least one input so every feature keeps a model.
            chosen = others[gen.integers(0, len(others), size=1)]
        return chosen


def all_others_selector(n_features: int) -> InputSelector:
    """Plain FRaC: every feature except the target is an input."""
    return _AllOthersSelector(n_features)


def subset_selector(kept: np.ndarray) -> InputSelector:
    """Full filtering: inputs come from ``kept`` only (minus the target)."""
    return _SubsetSelector(kept)


def fixed_inputs_selector(input_ids: "Sequence[int] | np.ndarray") -> InputSelector:
    """Every target is predicted from the same fixed input set.

    The sensor-panel wiring: a known panel of driver features predicts
    every (disjoint) target. Because all targets share their input ids —
    and, with a fully observed panel, their usable rows — the batched
    engine groups them into large multi-output fits instead of singleton
    groups (see :func:`repro.core.engine.plan_feature_batches`). Raises at
    selection time if a target appears in its own input set.
    """
    return _FixedInputsSelector(np.asarray(input_ids, dtype=np.intp))


def diverse_selector(n_features: int, p: float) -> InputSelector:
    """Diverse FRaC: each other feature is an input with probability ``p``.

    The draw is independent per (target, slot), so multiple predictor slots
    see different subsets — the paper's device for letting subtle patterns
    surface when dominant features are absent.
    """
    return _DiverseSelector(n_features, p)


class FRaC(AnomalyDetector):
    """Feature Regression and Classification anomaly detector.

    Parameters
    ----------
    config:
        Engine hyper-parameters; defaults to :class:`FRaCConfig`'s paper
        settings.
    target_features:
        Feature ids to build models for (default: all).
    input_selector:
        Hook choosing each predictor's inputs (default: all other
        features). See the module docstring for the variant wirings.
    resident_features:
        How many feature columns the run must keep resident in memory, for
        the resource model (full filtering keeps only the filtered subset;
        partial filtering and plain FRaC keep everything). Default: all.
    rng:
        Seed for CV folds, learner tie-breaking, and selector draws.
    """

    def __init__(
        self,
        config: "FRaCConfig | None" = None,
        *,
        target_features: "Sequence[int] | np.ndarray | None" = None,
        input_selector: "InputSelector | None" = None,
        resident_features: "int | None" = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        self.config = config or FRaCConfig()
        self._target_features = target_features
        self._input_selector = input_selector
        self._resident_features = resident_features
        self._rng = rng
        self.models_: "list[FeatureModel] | None" = None
        self.schema_: "FeatureSchema | None" = None
        self._pre: "Preprocessor | None" = None
        self._log: "ResourceLog | None" = None
        self.n_skipped_: int = 0
        self.n_failed_: int = 0
        self.failure_report_: "FailureReport | None" = None

    # -- fitting ---------------------------------------------------------
    def fit(
        self,
        x_train: np.ndarray,
        schema: FeatureSchema,
        *,
        checkpoint: Any = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> "FRaC":
        """Train one feature model per (target, slot) work item.

        ``checkpoint`` (a :class:`repro.parallel.CheckpointJournal`)
        streams completed items to disk and resumes a killed run,
        re-executing only missing items; ``fault_plan`` is the
        test-suite's deterministic fault-injection hook. Fault-handling
        behaviour (timeout, retries, skip-on-exhaustion) is configured on
        ``config.execution.retry``; features dropped after exhausting
        retries are recorded in ``self.failure_report_`` and excluded from
        the NS sum exactly like under-observed features (the "otherwise:
        0" branch).
        """
        x_train = check_2d(x_train, "x_train")
        if x_train.shape[1] != len(schema):
            raise DataError(
                f"x_train has {x_train.shape[1]} columns, schema {len(schema)}"
            )
        n_features = len(schema)
        targets = (
            np.arange(n_features)
            if self._target_features is None
            else np.asarray(self._target_features, dtype=np.intp)
        )
        if len(targets) == 0:
            raise DataError("target_features is empty; nothing to model")
        if len(targets) and (targets.min() < 0 or targets.max() >= n_features):
            raise DataError(f"target_features out of range [0, {n_features})")
        selector = self._input_selector or all_others_selector(n_features)

        resident = self._resident_features if self._resident_features is not None else n_features
        log = ResourceLog(
            data_bytes=design_matrix_bytes(x_train.shape[0], resident),
            n_workers=self.config.execution.effective_workers,
        )

        with log.measure_overhead():
            with span("fit.preprocess"):
                self._pre = Preprocessor(schema, standardize=self.config.standardize).fit(x_train)
                x_imputed = self._pre.transform(x_train)
                x_targets = self._pre.transform_keep_missing(x_train)

            with span("fit.build_tasks"):
                # One extra child beyond the per-task seeds: the run's fold
                # seed. Appended last so the per-task streams — and with
                # them every checkpoint key — are unchanged by its
                # introduction (SeedSequence.spawn is prefix-stable).
                seeds = spawn_seeds(
                    self._rng, len(targets) * self.config.n_predictors + 1
                )
                fold_seed = int(
                    np.random.default_rng(seeds[-1]).integers(0, 2**31 - 1)
                )
                tasks = []
                k = 0
                for target in targets:
                    for slot in range(self.config.n_predictors):
                        gen = np.random.default_rng(seeds[k])
                        inputs = np.asarray(selector(int(target), slot, gen), dtype=np.intp)
                        if len(inputs) and (inputs.min() < 0 or inputs.max() >= n_features):
                            raise DataError("input selector returned out-of-range ids")
                        tasks.append(
                            FeatureTask(
                                feature_id=int(target),
                                input_ids=inputs,
                                seed=int(gen.integers(0, 2**31 - 1)),
                                slot=slot,
                            )
                        )
                        k += 1

        shared = SharedTrainState(
            x_imputed=x_imputed,
            x_targets=x_targets,
            schema=schema,
            config=self.config,
            fold_seed=fold_seed,
        )
        _log.info(
            "fitting %d feature models (%d samples, %s mode, %d worker(s))",
            len(tasks),
            x_train.shape[0],
            self.config.execution.mode,
            self.config.execution.effective_workers,
        )
        failures = FailureReport()
        bus = get_bus()
        if bus is not None:
            bus.emit(
                RunStarted(
                    kind="frac.fit",
                    n_tasks=len(tasks),
                    n_samples=int(x_train.shape[0]),
                    mode=self.config.execution.mode,
                    n_workers=self.config.execution.effective_workers,
                )
            )
        resilient = (
            self.config.execution.retry is not None
            or checkpoint is not None
            or fault_plan is not None
        )
        try:
            with span("fit.train"):
                results = run_feature_tasks(
                    tasks,
                    shared,
                    checkpoint=checkpoint,
                    fault_plan=fault_plan,
                    failures=failures if resilient else None,
                )
        except Exception:
            if bus is not None:
                bus.emit(
                    RunFinished(
                        kind="frac.fit",
                        status="error",
                        failure_report=failures.to_dict(),
                    )
                )
            raise

        models: list[FeatureModel] = []
        self.n_skipped_ = 0
        for res in results:
            if res is None:
                self.n_skipped_ += 1
                continue
            model, cost = res
            models.append(model)
            log.add(cost)
        self.failure_report_ = failures
        self.n_failed_ = len(failures)
        if failures:
            _log.warning(
                "%d work item(s) dropped after exhausting retries; their "
                "features contribute 0 to the NS sum:\n%s",
                len(failures),
                failures.summary(),
            )
        if not models:
            if bus is not None:
                bus.emit(
                    RunFinished(
                        kind="frac.fit",
                        status="error",
                        n_skipped=self.n_skipped_,
                        n_failed=self.n_failed_,
                        failure_report=failures.to_dict(),
                    )
                )
            raise DataError(
                "no feature supported a model (all columns below min_observed)"
            )
        self.models_ = models
        self.schema_ = schema
        self._log = log
        report = log.report()
        _log.info(
            "fit complete: %d models (%d skipped), %.2fs cpu, %.1f MB modelled",
            len(models),
            self.n_skipped_,
            report.cpu_seconds,
            report.memory_bytes / 1e6,
        )
        if bus is not None:
            bus.emit(
                RunFinished(
                    kind="frac.fit",
                    status="ok",
                    n_models=len(models),
                    n_skipped=self.n_skipped_,
                    n_failed=self.n_failed_,
                    failure_report=failures.to_dict(),
                    metrics=(
                        bus.metrics.snapshot() if bus.metrics is not None else None
                    ),
                )
            )
        return self

    # -- scoring -------------------------------------------------------------
    def contributions(self, x_test: np.ndarray) -> ContributionMatrix:
        """Per-feature NS contributions for test samples."""
        if self.models_ is None:
            raise NotFittedError("FRaC is not fitted; call fit() first")
        x_test = check_2d(x_test, "x_test")
        with self._log.measure_overhead(), span("score.contributions"):
            x_imputed = self._pre.transform(x_test)
            x_targets = self._pre.transform_keep_missing(x_test)
            values = score_contributions(self.models_, x_imputed, x_targets)
        bus = get_bus()
        if bus is not None:
            bus.emit(
                ScoreComputed(n_samples=int(values.shape[0]), n_models=len(self.models_))
            )
        return ContributionMatrix(
            values=values,
            feature_ids=np.array([m.feature_id for m in self.models_], dtype=np.intp),
        )

    def score(self, x_test: np.ndarray) -> np.ndarray:
        """Normalized surprisal per sample; higher = more anomalous."""
        return self.contributions(x_test).ns_scores()

    # -- introspection ---------------------------------------------------------
    @property
    def resources(self) -> ResourceReport:
        if self._log is None:
            raise NotFittedError("FRaC is not fitted; no resources recorded")
        return self._log.report()

    def structure(self) -> dict[int, np.ndarray]:
        """Target feature id -> concatenated input ids across predictor
        slots. This is the wiring Figure 1 of the paper depicts: which
        features each predictor considers under each variant."""
        if self.models_ is None:
            raise NotFittedError("FRaC is not fitted")
        wiring: dict[int, list[np.ndarray]] = {}
        for m in self.models_:
            wiring.setdefault(m.feature_id, []).append(m.input_ids)
        return {t: np.unique(np.concatenate(parts)) for t, parts in wiring.items()}

    def model_quality(self) -> np.ndarray:
        """``(feature_id, information_gain)`` rows, most predictive first.

        A model's quality is the information its inputs carry about the
        target: ``H(f_i) - mean CV surprisal``. Ranking by raw surprisal
        would surface near-constant features (trivially "predictable" but
        carrying no information); the gain ranking surfaces the features
        whose *relationships* the model captured — the paper's "most
        predictive models" used for biological interpretation (§IV).
        """
        if self.models_ is None:
            raise NotFittedError("FRaC is not fitted")
        rows = np.array(
            [
                (m.feature_id, m.entropy - m.cv_mean_surprisal)
                for m in self.models_
            ],
            dtype=np.float64,
        )
        return rows[np.argsort(-rows[:, 1])]
