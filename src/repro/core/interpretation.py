"""Interpretability reports.

"It is not enough to determine that a sample is anomalous; we also want to
derive a molecular characterization of that specific anomaly" (paper §I).
Because NS is a per-feature sum, FRaC is directly interpretable: this
module turns fitted detectors and contribution matrices into structured
per-sample and per-model reports.

For the JL variant, projected components are linear mixes of original
features; :func:`jl_feature_attribution` pushes component contributions
back through the projection weights (the paper's §II-D aggregate-output
workaround).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.preprojection import JLFRaC
from repro.core.types import ContributionMatrix
from repro.utils.exceptions import DataError


@dataclass(frozen=True)
class FeatureContribution:
    """One feature's share of one sample's anomaly score."""

    feature_id: int
    feature_name: str
    contribution: float
    share: float  # fraction of the sample's total positive contribution


@dataclass(frozen=True)
class SampleExplanation:
    """Why one sample scored the way it did."""

    sample_index: int
    ns_score: float
    top_features: tuple[FeatureContribution, ...]

    def __str__(self) -> str:
        parts = ", ".join(
            f"{fc.feature_name} ({fc.contribution:+.2f})" for fc in self.top_features
        )
        return f"sample {self.sample_index}: NS={self.ns_score:.2f}; top: {parts}"


def explain_samples(
    contributions: ContributionMatrix,
    *,
    n_top: int = 10,
    feature_names: "Sequence[str] | None" = None,
) -> list[SampleExplanation]:
    """Per-sample explanations from a contribution matrix.

    Contributions from multiple predictor slots of the same feature are
    summed first (the NS ``j``-sum); features are then ranked by their
    summed contribution, largest (most surprising) first.
    """
    if n_top < 1:
        raise DataError(f"n_top must be >= 1; got {n_top}")
    unique_ids = np.unique(contributions.feature_ids)
    per_feature = np.zeros((contributions.n_samples, len(unique_ids)))
    for t, fid in enumerate(contributions.feature_ids):
        col = int(np.searchsorted(unique_ids, fid))
        per_feature[:, col] += contributions.values[:, t]

    def name_of(fid: int) -> str:
        if feature_names is not None and 0 <= fid < len(feature_names):
            return feature_names[fid]
        return f"f{fid}"

    out = []
    for s in range(contributions.n_samples):
        row = per_feature[s]
        order = np.argsort(-row)[:n_top]
        positive_total = float(row[row > 0].sum()) or 1.0
        top = tuple(
            FeatureContribution(
                feature_id=int(unique_ids[c]),
                feature_name=name_of(int(unique_ids[c])),
                contribution=float(row[c]),
                share=float(max(row[c], 0.0) / positive_total),
            )
            for c in order
        )
        out.append(
            SampleExplanation(
                sample_index=s, ns_score=float(row.sum()), top_features=top
            )
        )
    return out


def jl_feature_attribution(
    detector: JLFRaC, x_test: np.ndarray, *, n_top: int = 10
) -> np.ndarray:
    """Per-original-feature attribution for JL pre-projection FRaC.

    Each projected component's per-sample contribution is distributed over
    original features proportionally to the component's absolute
    projection weights (aggregated over categorical one-hot columns).
    Returns an ``(n_samples, n_original_features)`` attribution matrix
    whose rows sum to each sample's total positive NS contribution.
    """
    cm = detector.contributions(x_test)
    matrix = np.abs(detector.projection_.matrix_)  # (k, d_onehot)
    weights = matrix / np.maximum(matrix.sum(axis=1, keepdims=True), 1e-300)
    positive = np.maximum(cm.values, 0.0)  # (n, k) over components
    encoded_attr = positive @ weights[cm.feature_ids]  # (n, d_onehot)
    encoder = detector._encoder
    out = np.zeros((encoded_attr.shape[0], len(encoder.schema)))
    for j, (start, stop) in enumerate(encoder.column_spans):
        out[:, j] = encoded_attr[:, start:stop].sum(axis=1)
    return out


def model_report(
    detector, *, n_top: int = 20, feature_names: "Sequence[str] | None" = None
) -> list[dict[str, object]]:
    """Rows describing the most predictive feature models (paper §IV).

    Works with any detector exposing ``model_quality()`` (FRaC and the
    filtering/diverse variants).
    """
    quality = detector.model_quality()
    rows = []
    for fid, gain in quality[:n_top]:
        fid = int(fid)
        name = (
            feature_names[fid]
            if feature_names is not None and 0 <= fid < len(feature_names)
            else f"f{fid}"
        )
        rows.append(
            {"feature": name, "feature_id": fid, "information_gain": float(gain)}
        )
    return rows
