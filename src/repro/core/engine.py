"""The per-feature FRaC engine: cross-validated feature models.

One *work item* = one (target feature, predictor slot) pair. Executing an
item (``run_feature_task``):

1. selects the training rows where the target is observed;
2. k-fold cross-validates a fresh predictor to gather holdout
   (prediction, truth) pairs;
3. fits the error model (Gaussian residual / confusion matrix) on those
   pairs;
4. refits the predictor on all usable rows;
5. estimates the feature's training-set entropy.

Items only carry small picklable payloads (:class:`FeatureTask`); the
training matrix travels through the executor's shared-state channel (see
:mod:`repro.parallel.executor`), so process-mode workers inherit it via
fork instead of pickling it per item.

Batched execution
-----------------
:func:`run_feature_tasks` is the single entry point. When the configured
regressor advertises batching (:data:`~repro.learners.registry.
BATCHED_REGRESSORS`) and ``config.batched_training`` is on, real-valued
tasks are grouped by identical ``(rows, input_ids, fold layout)``
(:func:`plan_feature_batches`) and each group is executed by
:func:`run_feature_batch`: the row gathers, fold gathers, and the
learner's design-matrix factorization happen once per group instead of
once per feature, while every per-column float op replays the scalar
path verbatim (see :mod:`repro.learners.batched`). Tasks that share an
observed-row mask but not input ids — diverse-FRaC's per-feature input
draws, and the default all-others wiring — form *masked* groups
instead: shared row/fold/target gathers and centering, per-member
column subsets (the masked solver protocol). The batched path is
**byte-identical** to the per-feature path — NS scores, contributions,
``cv_mean_surprisal``, persisted artifacts — and preserves its
observable semantics: checkpoint journals keep per-feature keys (the two
paths' journals interchange), telemetry stays per-feature (batch items
run quiet; the orchestrator re-emits the task lifecycle per feature, and
``FoldTrained`` is emitted per (feature, fold) either way), and a failed
batch decomposes into per-feature execution under the caller's retry
policy. Deterministic fault injection (``fault_plan``) targets the
per-feature index space, so plans route the whole run down the
per-feature path.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import FRaCConfig
from repro.core.types import FeatureModel
from repro.data.schema import FeatureSchema
from repro.errormodels.confusion import ConfusionErrorModel
from repro.errormodels.entropy import discrete_entropy
from repro.errormodels.gaussian import GaussianErrorModel
from repro.errormodels.kde import GaussianKDE, batch_entropy
from repro.learners.registry import (
    learner_accepts_param,
    make_batched_learner,
    make_learner,
    supports_batching,
    supports_masked_batching,
)
from repro.learners.ridge import RidgeRegressor
from repro.parallel.executor import get_shared, run_tasks
from repro.parallel.faults import FailureReport, FaultPlan, RetryPolicy
from repro.parallel.profiling import cpu_seconds
from repro.parallel.resources import TaskCost, design_matrix_bytes, training_work_units
from repro.telemetry.events import (
    CheckpointHit,
    CheckpointMiss,
    FeatureTaskFinished,
    FeatureTaskStarted,
    FoldTrained,
)
from repro.telemetry.runtime import get_bus
from repro.telemetry.spans import span
from repro.utils.exceptions import DataError
from repro.utils.validation import check_2d


@dataclass(frozen=True)
class FeatureTask:
    """Picklable description of one (feature, predictor-slot) work item."""

    feature_id: int
    input_ids: np.ndarray
    seed: int
    slot: int = 0


@dataclass(frozen=True)
class SharedTrainState:
    """Read-only training state shared with all workers.

    ``x_imputed`` has every entry finite (model *inputs*); ``x_targets``
    keeps missing entries as NaN so target reads respect missingness. Both
    are in standardized units when the config says so.

    ``fold_seed`` pins the run's CV fold layout: every task with the same
    usable-row count draws the identical permutation (see
    :func:`fold_rng`), which is what lets the batched planner group tasks
    by ``(rows, input_ids)`` and know the fold layout matches too.
    """

    x_imputed: np.ndarray
    x_targets: np.ndarray
    schema: FeatureSchema
    config: FRaCConfig
    fold_seed: int = 0


def fold_rng(fold_seed: int, n: int) -> np.random.Generator:
    """The generator that deals the k-fold permutation for ``n`` rows.

    Seeded by ``(run fold seed, row count)`` — not by the per-task seed —
    so tasks whose usable rows coincide share one fold layout. Shared
    layouts are a *requirement* of the batched path (fold gathers are
    computed once per group) and harmless to the per-feature path: folds
    stay deterministic per run, and the per-task stream still
    independently seeds the learners.
    """
    return np.random.default_rng(np.random.SeedSequence([int(fold_seed), int(n)]))


def kfold_indices(
    n: int, k: int, rng: np.random.Generator
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Seeded k-fold split of ``range(n)`` into (train, holdout) pairs."""
    if n < 2:
        raise DataError(f"cannot cross-validate {n} samples")
    k = max(2, min(k, n))
    perm = rng.permutation(n)
    folds = np.array_split(perm, k)
    out = []
    for i in range(k):
        holdout = folds[i]
        # Known k-fold cost, deferred to the batched-training rewrite
        # (ROADMAP Open item 1): k small, indices O(n); the ledger
        # tracks it under run_feature_task's measured span time.
        train = np.concatenate([folds[j] for j in range(k) if j != i])  # fraclint: disable=FRL016
        out.append((train, holdout))
    return out


#: Fold-layout memo. The permutation depends only on ``(fold_seed, n,
#: k)`` — exactly the sharing contract :func:`fold_rng` encodes — so
#: every task with the same usable-row count reuses one dealt layout
#: instead of re-seeding a generator per task. Entries are treated as
#: read-only; the bound only guards pathological studies that sweep
#: thousands of distinct row counts. Thread-mode tasks share the memo,
#: so every access holds ``_FOLD_CACHE_LOCK`` (FRL021): the check-then-
#: insert and the capacity ``clear()`` must be atomic with respect to
#: each other.
_FOLD_CACHE: "dict[tuple[int, int, int], list[tuple[np.ndarray, np.ndarray]]]" = {}
_FOLD_CACHE_LOCK = threading.Lock()


def shared_folds(
    fold_seed: int, n: int, k: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Memoized ``kfold_indices(n, k, fold_rng(fold_seed, n))``.

    The memo is purely an optimization: the value for a key is a pure
    function of the key, so a process-mode worker repopulating its own
    copy-on-write snapshot recomputes the identical layout — losing the
    write at the harvest barrier costs time, never correctness (the
    audited FRL025 suppressions below).
    """
    key = (int(fold_seed), int(n), int(k))
    with _FOLD_CACHE_LOCK:
        folds = _FOLD_CACHE.get(key)
        if folds is None:
            folds = kfold_indices(n, k, fold_rng(fold_seed, n))
            if len(_FOLD_CACHE) >= 1024:
                _FOLD_CACHE.clear()  # fraclint: disable=FRL025 — pure memo; a worker-local clear only costs recompute
            _FOLD_CACHE[key] = folds  # fraclint: disable=FRL025 — pure memo; key determines value, lost writes recompute identically
    return folds


def _make_predictor(name: str, params: dict, seed: int):
    """Instantiate a learner, injecting the task seed when supported.

    Support is decided by inspecting the learner's signature
    (:func:`repro.learners.registry.learner_accepts_param`) rather than by
    catching ``TypeError``: a blanket except would also swallow the
    TypeError caused by a bad *user* parameter and retry without the seed,
    turning a configuration mistake into a silently nondeterministic run.
    Genuine construction errors always propagate.
    """
    if learner_accepts_param(name, "seed"):
        return make_learner(name, **{**params, "seed": seed})
    return make_learner(name, **params)


def feature_task_key(task: FeatureTask) -> tuple[int, int, int]:
    """Stable checkpoint-journal key for one work item.

    ``(feature_id, slot, seed)`` pins the task's RNG stream (the input
    draw and learner seed), and the task seed is spawned from the same
    root stream as the run's shared ``fold_seed`` — so equal keys within
    one detector configuration imply bit-identical results (the
    idempotence resume relies on), while any change to the root seed or
    task layout changes the keys and naturally invalidates stale journal
    entries. The batched executor path journals under these same
    per-feature keys, so batched and per-feature journals interchange.
    """
    return (int(task.feature_id), int(task.slot), int(task.seed))


def run_feature_task(task: FeatureTask) -> "tuple[FeatureModel, TaskCost] | None":
    """Execute one work item against the executor-shared training state.

    Returns ``None`` when the feature cannot support a model (too few
    observed values); the caller simply drops it from the NS sum, which is
    the "otherwise: 0" branch of the NS definition applied at train time.
    """
    shared: SharedTrainState = get_shared()
    cfg = shared.config
    start = cpu_seconds()

    target_col = shared.x_targets[:, task.feature_id]
    rows = np.flatnonzero(~np.isnan(target_col))
    if len(rows) < cfg.min_observed:
        return None
    y = target_col[rows]
    input_ids = np.asarray(task.input_ids, dtype=np.intp)
    x_in = shared.x_imputed[np.ix_(rows, input_ids)]

    spec = shared.schema[task.feature_id]
    rng = np.random.default_rng(task.seed)
    learner_seed = int(rng.integers(0, 2**31 - 1))
    if spec.is_categorical:
        make = lambda: _make_predictor(cfg.classifier, dict(cfg.classifier_params), learner_seed)
        error_model = ConfusionErrorModel(spec.arity, smoothing=cfg.confusion_smoothing)
        entropy = discrete_entropy(y, arity=spec.arity)
    else:
        make = lambda: _make_predictor(cfg.regressor, dict(cfg.regressor_params), learner_seed)
        error_model = GaussianErrorModel(sigma_floor=cfg.sigma_floor)
        entropy = GaussianKDE().fit(y).entropy()

    # Cross-validation pass: gather holdout (prediction, truth) pairs.
    # Fold events are worker-side: visible in serial/thread modes, muted in
    # forked process workers (whose bus is dropped; see executor._init_worker).
    bus = get_bus()
    preds = np.empty(len(rows))
    folds = shared_folds(shared.fold_seed, len(rows), cfg.n_folds)
    # THE per-feature fit loop the paper profiles (O(f) dispatch):
    # ranked #1 in docs/optimization-ledger.md. The batched path
    # (ROADMAP Open item 1, run_feature_batch below) replaces this loop
    # whenever the regressor supports batching; it stays as the scalar
    # path for categorical/unbatched learners and as the byte-equivalence
    # reference the proof harness compares against. The per-fold gathers
    # below copy rows each iteration for the same reason.
    for fold, (train_idx, holdout_idx) in enumerate(folds):  # fraclint: disable=FRL015
        model = make()
        model.fit(x_in[train_idx], y[train_idx])  # fraclint: disable=FRL016 -- per-fold row gather, batched with the fit loop (Open item 1)
        preds[holdout_idx] = model.predict(x_in[holdout_idx])  # fraclint: disable=FRL016 -- per-fold holdout gather, batched with the fit loop (Open item 1)
        if bus is not None:
            bus.emit(
                FoldTrained(
                    feature_id=int(task.feature_id),
                    slot=int(task.slot),
                    fold=fold,
                    n_folds=len(folds),
                )
            )
    error_model.fit(preds, y)
    cv_mean_surprisal = float(error_model.surprisal(preds, y).mean())

    # Final predictor: refit on every usable row.
    predictor = make().fit(x_in, y)

    cost = TaskCost(
        cpu_seconds=cpu_seconds() - start,
        design_bytes=design_matrix_bytes(len(rows), max(len(input_ids), 1)),
        model_bytes=int(getattr(predictor, "model_nbytes", 0)) + error_model.model_nbytes,
        work_units=training_work_units(len(folds) + 1, len(rows), len(input_ids)),
    )
    return (
        FeatureModel(
            feature_id=task.feature_id,
            input_ids=input_ids,
            predictor=predictor,
            error_model=error_model,
            entropy=entropy,
            cv_mean_surprisal=cv_mean_surprisal,
        ),
        cost,
    )


# -- batched execution -------------------------------------------------------

#: Largest feature group executed as one batch. Grouping is what amortizes
#: the gathers and the Gram factorization; the cap only bounds how much
#: completed work one mid-batch crash can lose before the next journal
#: append (batch results stream to the checkpoint per batch, not per run).
MAX_BATCH_FEATURES = 64

#: Global switch for masked (shared-rows, per-member input-subset)
#: grouping. Results are bitwise identical either way — the flag exists
#: so the Table IV benchmark can price the masked path against the
#: singleton-batch baseline it replaced (benchmarks/bench_table4_diverse
#: .py flips it around the "pre" run). Planning happens in the parent
#: process only, so the flag never crosses a worker boundary.
MASKED_GROUPING = True


@dataclass(frozen=True)
class FeatureBatch:
    """A group of real-valued tasks sharing ``(rows, input_ids, folds)`` —
    or, when ``masked`` is set, sharing only ``(rows, folds)`` with
    per-member input subsets (the diverse-FRaC shape).

    ``indices`` are the member positions in the task list handed to
    :func:`plan_feature_batches`, so the orchestrator can place results
    and re-emit per-feature telemetry without searching. ``group`` is a
    short content digest of the plan-group key (the observed-mask byte
    pattern, plus the input-id bytes for exact groups), stamped onto the
    batch's ``fit.batch`` span so a trace alone reveals how the planner
    grouped the feature space.
    """

    tasks: tuple[FeatureTask, ...]
    indices: tuple[int, ...]
    group: str = ""
    masked: bool = False


def batch_task_key(batch: FeatureBatch) -> tuple:
    """Journal key of a batch: the tuple of its members' per-feature keys."""
    return tuple(feature_task_key(task) for task in batch.tasks)


def plan_feature_batches(
    tasks: "list[FeatureTask]",
    shared: SharedTrainState,
    max_batch: int = MAX_BATCH_FEATURES,
    masked: bool = True,
) -> "tuple[list[FeatureBatch], list[int]]":
    """Group batchable tasks; return ``(batches, passthrough_indices)``.

    Tasks are batchable when their target is real-valued (categorical
    targets keep the per-feature classifier path). Group identity is the
    byte pattern of the target's observed-row mask plus the input-id
    array: equal masks mean equal usable rows, and — because the fold
    permutation is dealt by :func:`fold_rng` from the shared fold seed
    and the row count — equal rows imply an equal fold layout, completing
    the ``(rows, input_ids, fold-layout)`` grouping contract.

    When a mask group contains *different* input-id patterns — the
    all-others wiring and diverse-FRaC's per-feature input draws (paper
    §II-B), which the exact key degenerates to singletons — and
    ``masked`` grouping is on, the whole mask group becomes masked
    batches instead: members share ``(rows, fold layout)`` and carry
    their own input subsets, executed by the masked-solver path (one row
    gather / centering per group, one Gram per member; see
    :mod:`repro.learners.batched`). Groups larger than ``max_batch``
    split into consecutive chunks (bitwise results are independent of
    batch boundaries; only amortization and checkpoint granularity
    change).

    Ordering is deterministic: groups appear in first-member order and
    members in task order, so plans are identical across runs and modes.
    """
    masked = masked and MASKED_GROUPING
    by_mask: "dict[bytes, dict[bytes, list[int]]]" = {}
    passthrough: list[int] = []
    for pos, task in enumerate(tasks):
        if shared.schema[task.feature_id].is_categorical:
            passthrough.append(pos)
            continue
        observed = ~np.isnan(shared.x_targets[:, task.feature_id])
        ids_bytes = np.asarray(task.input_ids, dtype=np.intp).tobytes()
        by_mask.setdefault(observed.tobytes(), {}).setdefault(ids_bytes, []).append(pos)
    batches: list[FeatureBatch] = []
    for mask_bytes, subgroups in by_mask.items():
        if masked and len(subgroups) > 1:
            # Deterministic plan-group fingerprint: a content digest of
            # the grouping key itself, so equal groups carry equal labels
            # across runs, machines, and batch-size splits (telemetry
            # join key only — never fed back into computation). Masked
            # groups digest the mask alone: input ids are per member.
            group = hashlib.sha256(mask_bytes).hexdigest()[:12]
            positions = sorted(p for ps in subgroups.values() for p in ps)
            for lo in range(0, len(positions), max_batch):
                chunk = positions[lo : lo + max_batch]
                batches.append(
                    FeatureBatch(
                        tasks=tuple(tasks[p] for p in chunk),
                        indices=tuple(chunk),
                        group=group,
                        masked=True,
                    )
                )
            continue
        for ids_bytes, positions in subgroups.items():
            group = hashlib.sha256(mask_bytes + ids_bytes).hexdigest()[:12]
            for lo in range(0, len(positions), max_batch):
                chunk = positions[lo : lo + max_batch]
                batches.append(
                    FeatureBatch(
                        tasks=tuple(tasks[p] for p in chunk),
                        indices=tuple(chunk),
                        group=group,
                    )
                )
    return batches, passthrough


def run_feature_batch(batch: FeatureBatch) -> "list[tuple[FeatureModel, TaskCost] | None]":
    """Execute one task group against the executor-shared training state.

    Returns one per-member result in ``batch.tasks`` order, each exactly
    what :func:`run_feature_task` would have produced for that task: the
    row/fold gathers and the design-matrix factorization are shared per
    group, while every per-column operation (target validation,
    centering, the ``XᵀY`` product, the triangular solves, the error
    model, entropy) replays the scalar call sequence verbatim — see
    :mod:`repro.learners.batched` for why that is bitwise-preserving.

    Members share their rows by construction (:func:`plan_feature_batches`
    groups by the observed-row mask), so the under-``min_observed`` check
    decides once for the whole group.

    Each execution is bracketed by a ``fit.batch`` span whose attrs carry
    the batch size and the planner's group fingerprint — the measurement
    substrate for pricing per-group amortization from a trace alone
    (observation only; the batch wave's quiet task lifecycle and the
    byte-equivalence proof are unaffected).
    """
    with span(
        "fit.batch",
        attrs={
            "batch_size": len(batch.tasks),
            "group": batch.group,
            "masked": int(batch.masked),
        },
    ):
        return _execute_feature_batch(batch)


def _execute_feature_batch(
    batch: FeatureBatch,
) -> "list[tuple[FeatureModel, TaskCost] | None]":
    shared: SharedTrainState = get_shared()
    cfg = shared.config
    start = cpu_seconds()

    first = batch.tasks[0]
    rows = np.flatnonzero(~np.isnan(shared.x_targets[:, first.feature_id]))
    if len(rows) < cfg.min_observed:
        return [None] * len(batch.tasks)
    if batch.masked:
        return _execute_masked_batch(batch, shared, rows, start)
    input_ids = np.asarray(first.input_ids, dtype=np.intp)
    x_in = shared.x_imputed[np.ix_(rows, input_ids)]
    # One design validation for the whole group: every fold subset below
    # is a row slice of x_in, so finiteness here covers them all. The
    # solvers are told to skip their own re-check (check=False).
    check_2d(x_in, "X", allow_nan=False)
    ys = [shared.x_targets[:, task.feature_id][rows] for task in batch.tasks]

    learner = make_batched_learner(cfg.regressor, **dict(cfg.regressor_params))
    folds = shared_folds(shared.fold_seed, len(rows), cfg.n_folds)

    bus = get_bus()
    preds = [np.empty(len(rows)) for _ in batch.tasks]
    for fold, (train_idx, holdout_idx) in enumerate(folds):
        # One gather + one factorization per (group, fold) — the whole
        # point of the batch; the remaining per-column cost is O(n*d) gemv.
        solver = learner.solver(x_in[train_idx], check=False)  # fraclint: disable=FRL016 -- the amortized per-fold gather (one per group, not per feature); priced in the ledger under run_feature_tasks
        x_holdout = x_in[holdout_idx]  # fraclint: disable=FRL016 -- amortized holdout gather, shared by every member column
        for j, task in enumerate(batch.tasks):
            model = solver.fit_column(ys[j][train_idx])  # fraclint: disable=FRL016 -- per-column target gather; O(n) vector next to the shared O(n*d) factorization
            preds[j][holdout_idx] = model.predict(x_holdout)
            if bus is not None:
                bus.emit(
                    FoldTrained(
                        feature_id=int(task.feature_id),
                        slot=int(task.slot),
                        fold=fold,
                        n_folds=len(folds),
                    )
                )

    final = learner.solver(x_in, check=False)
    shared_cpu = cpu_seconds() - start
    out: "list[tuple[FeatureModel, TaskCost] | None]" = []
    # The batched tail (ROADMAP Open item 1): the expensive shared work —
    # gathers and the Gram factorization — is already hoisted into
    # ``learner.solver`` above; what remains per member is an O(n*d) gemv
    # column solve plus the error model, deliberately kept as per-column
    # scalar calls so each replays run_feature_task's float ops verbatim
    # (bitwise equivalence over raw speed; see repro.learners.batched).
    for j, task in enumerate(batch.tasks):  # fraclint: disable=FRL015
        per0 = cpu_seconds()
        y = ys[j]
        error_model = GaussianErrorModel(sigma_floor=cfg.sigma_floor)
        entropy = GaussianKDE().fit(y).entropy()
        error_model.fit(preds[j], y)
        cv_mean_surprisal = float(error_model.surprisal(preds[j], y).mean())
        predictor = final.fit_column(y)
        cost = TaskCost(
            # Shared work is split evenly; per-member tails are measured.
            # The deterministic components (bytes, work units) use the
            # same formulas as the per-feature path.
            cpu_seconds=shared_cpu / len(batch.tasks) + (cpu_seconds() - per0),
            design_bytes=design_matrix_bytes(len(rows), max(len(input_ids), 1)),
            model_bytes=int(getattr(predictor, "model_nbytes", 0))
            + error_model.model_nbytes,
            work_units=training_work_units(len(folds) + 1, len(rows), len(input_ids)),
        )
        out.append(
            (
                FeatureModel(
                    feature_id=task.feature_id,
                    input_ids=input_ids,
                    predictor=predictor,
                    error_model=error_model,
                    entropy=entropy,
                    cv_mean_surprisal=cv_mean_surprisal,
                ),
                cost,
            )
        )
    return out


def _execute_masked_batch(
    batch: FeatureBatch,
    shared: SharedTrainState,
    rows: np.ndarray,
    start: float,
) -> "list[tuple[FeatureModel, TaskCost] | None]":
    """Execute a masked group: shared rows/folds, per-member input subsets.

    The diverse-FRaC shape (and the all-others wiring): members agree on
    the observed-row mask — hence on the fold layout — but each draws its
    own input columns, so no design matrix is shared. What *is* shared is
    gathered and computed once per (group, fold): the full-width row
    gather, the column means, the centered design, the holdout rows, and
    the whole y side (gather, finiteness, means, centering — batched
    through bit-preserving contiguous-row reductions). Each member then
    pays only its own column gather, Gram + Cholesky, and gemv solves,
    through :meth:`repro.learners.batched.MaskedSolver.member` — which
    guarantees every member float is bit-identical to the per-feature
    path (single-input members replay the scalar kernel choice).
    """
    cfg = shared.config
    x_full = shared.x_imputed[rows]
    # One design validation for the whole group (covers every member's
    # column subset and every fold's row slice); solvers skip re-checks.
    check_2d(x_full, "X", allow_nan=False)
    ids_list = [np.asarray(task.input_ids, dtype=np.intp) for task in batch.tasks]
    feat = np.fromiter(
        (task.feature_id for task in batch.tasks), dtype=np.intp, count=len(batch.tasks)
    )
    # (k, n) with contiguous member rows: row j is exactly the 1-D target
    # vector the per-feature path gathers for member j.
    ys = shared.x_targets.T[np.ix_(feat, rows)]

    learner = make_batched_learner(cfg.regressor, **dict(cfg.regressor_params))
    folds = shared_folds(shared.fold_seed, len(rows), cfg.n_folds)

    bus = get_bus()
    preds = [np.empty(len(rows)) for _ in batch.tasks]
    for fold, (train_idx, holdout_idx) in enumerate(folds):
        # One gather + one mean/centering pass per (group, fold); the
        # remaining per-member cost is the column gather and its own
        # Gram factorization (a shared factor is not bit-reachable here —
        # see repro.learners.batched).
        solver = learner.masked_solver(x_full[train_idx], check=False)  # fraclint: disable=FRL016 -- the amortized per-fold gather (one per group, not per feature); priced in the ledger under run_feature_tasks
        x_holdout = x_full[holdout_idx]  # fraclint: disable=FRL016 -- amortized holdout gather, shared by every member column
        # ascontiguousarray: the column gather is F-contiguous, whose
        # axis-1 reduction takes a strided kernel; each member's
        # reference y.mean() is the 1-D pairwise kernel, which only the
        # C-contiguous rows replay.
        y_fold = np.ascontiguousarray(ys[:, train_idx])  # fraclint: disable=FRL016 -- amortized target gather: one (k, n_fold) copy per fold for the whole group
        if not np.isfinite(y_fold).all():
            # The same error fit_column raises per member; failing the
            # batch routes every member down the per-feature path, which
            # reports it with the offending feature attached.
            raise ValueError("target y contains non-finite values")
        # Contiguous-row axis-1 reductions run the same pairwise kernel
        # as each member's scalar y.mean(); broadcast centering is
        # elementwise — both bit-identical to the per-member ops.
        y_means = y_fold.mean(axis=1)
        y_centered = y_fold - y_means[:, None]
        for j, task in enumerate(batch.tasks):
            member = solver.member(ids_list[j])
            model = member.solve_centered(y_centered[j], y_means[j])
            # The gemv predict() runs, minus its isfinite re-scan of rows
            # validated once above.
            # ascontiguousarray: the column gather is F-contiguous and
            # gemv dispatches differently there; the reference path's
            # np.ix_ gather is C-contiguous, so replay that layout.
            x_m = np.ascontiguousarray(x_holdout[:, ids_list[j]])  # fraclint: disable=FRL016 -- per-member holdout column gather; O(n*d') next to the member's own O(n*d'^2) Gram
            preds[j][holdout_idx] = x_m @ model.coef_ + model.intercept_
            if bus is not None:
                bus.emit(
                    FoldTrained(
                        feature_id=int(task.feature_id),
                        slot=int(task.slot),
                        fold=fold,
                        n_folds=len(folds),
                    )
                )

    final = learner.masked_solver(x_full, check=False)
    # Batched per-member tail: KDE entropies, Gaussian error models, and
    # CV mean surprisals all batch across the group's contiguous rows
    # with the same bit-preservation arguments as the training half (see
    # repro.errormodels.kde.batch_entropy / GaussianErrorModel.batch_fit).
    # Only the final refit stays per member — its Gram is the member's own.
    preds_mat = np.stack(preds)
    entropies = batch_entropy(ys)
    error_models = GaussianErrorModel.batch_fit(
        preds_mat, ys, sigma_floor=cfg.sigma_floor
    )
    cv_means = GaussianErrorModel.batch_mean_surprisal(error_models, preds_mat, ys)
    shared_cpu = cpu_seconds() - start
    out: "list[tuple[FeatureModel, TaskCost] | None]" = []
    for j, task in enumerate(batch.tasks):  # fraclint: disable=FRL015 -- O(k) assembly: the tail's numpy work (entropy, error fit, CV surprisal) is batched above; only the final per-member refit stays, its Gram being the member's own
        per0 = cpu_seconds()
        error_model = error_models[j]
        entropy = float(entropies[j])
        cv_mean_surprisal = float(cv_means[j])
        predictor = final.member(ids_list[j]).fit_column(ys[j])
        cost = TaskCost(
            cpu_seconds=shared_cpu / len(batch.tasks) + (cpu_seconds() - per0),
            design_bytes=design_matrix_bytes(len(rows), max(len(ids_list[j]), 1)),
            model_bytes=int(getattr(predictor, "model_nbytes", 0))
            + error_model.model_nbytes,
            work_units=training_work_units(
                len(folds) + 1, len(rows), len(ids_list[j])
            ),
        )
        out.append(
            (
                FeatureModel(
                    feature_id=task.feature_id,
                    input_ids=ids_list[j],
                    predictor=predictor,
                    error_model=error_model,
                    entropy=entropy,
                    cv_mean_surprisal=cv_mean_surprisal,
                ),
                cost,
            )
        )
    return out


class _FanoutJournal:
    """Checkpoint adapter fanning one batch append into per-feature appends.

    The batch wave journals through this wrapper so the on-disk journal
    only ever contains *per-feature* entries — the same keys and values
    the per-feature path writes, streamed per completed batch. Resume
    reads the journal at per-feature granularity (the orchestrator's
    pre-pass), so ``entries()`` is empty by construction: cached features
    never reach the batch wave.
    """

    def __init__(self, journal, batches: "list[FeatureBatch]") -> None:
        self._journal = journal
        self._keys = {batch_task_key(b): [feature_task_key(t) for t in b.tasks] for b in batches}
        self.path = getattr(journal, "path", "?")

    def entries(self) -> dict:
        return {}

    def append(self, key, value) -> None:
        for feature_key, feature_value in zip(self._keys[key], value):
            self._journal.append(feature_key, feature_value)


def run_feature_tasks(
    tasks: "list[FeatureTask]",
    shared: SharedTrainState,
    *,
    checkpoint=None,
    fault_plan: "FaultPlan | None" = None,
    failures: "FailureReport | None" = None,
) -> "list[tuple[FeatureModel, TaskCost] | None]":
    """Execute every work item, batched where the regressor supports it.

    The single training entry point: chooses between the batched executor
    path and the per-feature path, preserving the per-feature path's
    observable behaviour in either case (see the module docstring).
    ``fault_plan`` indices address the per-feature task list, so any plan
    routes execution down the per-feature path — which keeps every
    fault-injection proof exact, and lets a poison-plan resume prove that
    a batched-written journal replays with zero re-executions.
    """
    cfg = shared.config
    use_batched = (
        cfg.batched_training
        and fault_plan is None
        and supports_batching(cfg.regressor)
    )
    if use_batched:
        return _run_batched(tasks, shared, checkpoint, failures)
    # The reference path: one executor item per (feature, slot). run_tasks
    # itself picks fail-fast vs resilient from which arguments are set.
    return run_tasks(
        run_feature_task,
        tasks,
        shared=shared,
        config=cfg.execution,
        checkpoint=checkpoint,
        task_key=feature_task_key,
        fault_plan=fault_plan,
        failures=failures,
    )


def _run_batched(tasks, shared, checkpoint, failures):
    """Batched orchestration with per-feature observable semantics.

    1. *Checkpoint pre-pass* (per feature): cached results resolve without
       execution, emitting the same ``CheckpointHit``/``CheckpointMiss``
       and cached-``FeatureTaskFinished`` events, in the same task order,
       as the resilient per-feature scheduler.
    2. *Batch wave*: remaining batchable tasks run as quiet coarse items
       (no batch-level lifecycle events); completed batches stream to the
       journal through :class:`_FanoutJournal` at per-feature keys. Under
       a retry policy, transient faults retry at batch granularity and
       exhausted batches are *decomposed*, never skipped outright.
    3. *Lifecycle re-emission*: each batch-completed feature gets its
       ``FeatureTaskStarted``/``FeatureTaskFinished`` pair, so per-feature
       event counts are replay-identical with the per-feature path.
    4. *Decomposed + passthrough run*: members of failed batches and
       non-batchable (categorical) tasks execute per feature under the
       caller's own retry policy; their lifecycle events are the real
       ones. Their completions are journaled afterwards (skipped features
       are not journaled, matching the per-feature scheduler).
    """
    cfg = shared.config
    execution = cfg.execution
    bus = get_bus()
    n = len(tasks)
    keys = [feature_task_key(task) for task in tasks]
    results: "list" = [None] * n
    resilient = (
        execution.retry is not None or checkpoint is not None or failures is not None
    )

    # 1. Per-feature checkpoint pre-pass.
    pending: list[int] = list(range(n))
    if checkpoint is not None:
        completed = checkpoint.entries()
        pending = []
        for i, key in enumerate(keys):
            if key in completed:
                results[i] = completed[key]
                if bus is not None:
                    bus.emit(CheckpointHit(index=i, key=key))
                    bus.emit(
                        FeatureTaskFinished(
                            index=i, status="cached", attempts=0, key=key
                        )
                    )
            else:
                if bus is not None:
                    bus.emit(CheckpointMiss(index=i, key=key))
                pending.append(i)

    batches, passthrough = plan_feature_batches(
        [tasks[i] for i in pending],
        shared,
        masked=supports_masked_batching(cfg.regressor),
    )

    # 2. Batch wave (quiet: lifecycle is re-emitted per feature below).
    wave_failures = FailureReport()
    completed_batches: "list[tuple[FeatureBatch, list]]" = []
    leftover = [pending[pos] for pos in passthrough]
    if batches:
        wave_policy = None
        if resilient:
            base = execution.retry or RetryPolicy(max_retries=0, on_exhaustion="raise")
            wave_policy = replace(
                base,
                on_exhaustion="skip",
                task_timeout=(
                    None
                    if base.task_timeout is None
                    # A batch is up to max-batch features of work; scale the
                    # per-feature budget so grouping cannot induce timeouts.
                    else base.task_timeout * max(len(b.tasks) for b in batches)
                ),
            )
        wave_values = run_tasks(
            run_feature_batch,
            batches,
            shared=shared,
            config=replace(execution, retry=wave_policy),
            checkpoint=None if checkpoint is None else _FanoutJournal(checkpoint, batches),
            task_key=batch_task_key,
            failures=wave_failures if resilient else None,
            quiet=True,
        )
        failed_batches = set(wave_failures.indices())
        for b, (batch, values) in enumerate(zip(batches, wave_values)):
            if b in failed_batches or values is None:
                leftover.extend(pending[pos] for pos in batch.indices)
                continue
            completed_batches.append((batch, values))
            for pos, value in zip(batch.indices, values):
                results[pending[pos]] = value

    # 3. Re-emit the per-feature lifecycle for batch-completed features.
    if bus is not None and completed_batches:
        done = sorted(
            pending[pos] for batch, _ in completed_batches for pos in batch.indices
        )
        for i in done:
            bus.emit(FeatureTaskStarted(index=i, attempt=0, key=keys[i]))
            bus.emit(
                FeatureTaskFinished(
                    index=i, status="ok", attempts=1, key=keys[i], duration_s=None
                )
            )

    # 4. Decomposed batch members + passthrough tasks run per feature.
    if leftover:
        leftover.sort()
        sub = [tasks[i] for i in leftover]
        if resilient:
            report = failures if failures is not None else FailureReport()
            values = run_tasks(
                run_feature_task,
                sub,
                shared=shared,
                config=execution,
                task_key=feature_task_key,
                failures=report,
            )
            failed_keys = {f.key for f in report}
        else:
            values = run_tasks(
                run_feature_task,
                sub,
                shared=shared,
                config=execution,
                task_key=feature_task_key,
            )
            failed_keys = set()
        for i, value in zip(leftover, values):
            results[i] = value
            if checkpoint is not None and keys[i] not in failed_keys:
                checkpoint.append(keys[i], value)
    return results


#: Global switch for the batched scoring gather, the scoring-side twin of
#: :data:`MASKED_GROUPING`. ``True`` runs the grouped path under a
#: ``score.batch`` span; ``False`` replays the retired per-model loop
#: (span ``score.gather``) so the benchmark trajectory can price the
#: pre-batching engine in the same process. Scores are bitwise identical
#: either way.
BATCHED_SCORING = True


def _gather_surprisals_scalar(
    models: list[FeatureModel],
    x_test_imputed: np.ndarray,
    x_test_targets: np.ndarray,
    out: np.ndarray,
) -> None:
    """The retired per-model gather loop, kept as the priced baseline.

    :func:`gather_surprisals` is pinned bitwise against this exact loop
    (tests/core/test_batched_scoring.py); benchmarks run it via
    :data:`BATCHED_SCORING` to measure what the batching bought.
    """
    for t, fm in enumerate(models):  # fraclint: disable=FRL015 -- the deliberately scalar baseline the bench trajectory prices
        truths = x_test_targets[:, fm.feature_id]
        observed = ~np.isnan(truths)
        if not observed.any():
            continue
        preds = fm.predictor.predict(x_test_imputed[np.ix_(observed, fm.input_ids)])  # fraclint: disable=FRL016 -- per-model gather is the point of this baseline
        out[observed, t] = (
            fm.error_model.surprisal(preds, truths[observed]) - fm.entropy  # fraclint: disable=FRL016 -- the baseline's per-model masked gather/scatter, priced by score.gather
        )


def gather_surprisals(
    models: list[FeatureModel],
    x_test_imputed: np.ndarray,
    x_test_targets: np.ndarray,
    out: np.ndarray,
) -> None:
    """Batched masked scoring, written into ``out`` in place.

    The per-model gather loop this replaces was the optimization ledger's
    #1 measured finding: seventeen-odd numpy dispatches per feature model
    (mask, row copy, ``predict`` validation, scalar surprisal) on arrays
    small enough that dispatch dominated. The batched path (ROADMAP Open
    item 1, scoring half) groups models by (observed-mask bytes, error-
    model type) and amortizes everything the group shares — the mask, the
    truth gather, the surprisal math (one
    :meth:`~repro.errormodels.base.ErrorModel.batch_surprisal` call), the
    entropy subtraction, and the masked scatter — while keeping the
    result bitwise equal to the scalar loop:

    - gathers and scatters are pure copies;
    - linear predictions stay one gemv *per model* — stacking coefficient
      vectors into one GEMM is **not** columnwise bit-identical to the
      per-model gemv (measured; docs/performance.md) — but skip
      ``predict``'s re-validation scan, which is a bitwise no-op;
    - batched surprisal broadcasts per-model rows through the same
      elementwise ops the scalar path runs, with per-model scalar
      ``np.log`` replay where SIMD would move a bit;
    - subtracting a per-model entropy row is elementwise identical to
      subtracting each scalar.
    """
    groups: "dict[tuple[bytes, type], list[int]]" = {}
    masks: "dict[tuple[bytes, type], np.ndarray]" = {}
    for t, fm in enumerate(models):
        observed = ~np.isnan(x_test_targets[:, fm.feature_id])
        key = (observed.tobytes(), type(fm.error_model))
        groups.setdefault(key, []).append(t)
        masks.setdefault(key, observed)
    for key, cols in groups.items():
        mask = masks[key]
        if not mask.any():
            continue
        rows = np.flatnonzero(mask)
        full = len(rows) == mask.shape[0]
        x_obs = x_test_imputed if full else x_test_imputed[rows]  # fraclint: disable=FRL016 -- one row gather per mask group (not per model): this IS the batched gather
        feat = np.fromiter(
            (models[t].feature_id for t in cols), dtype=np.intp, count=len(cols)
        )
        truths = x_test_targets[:, feat] if full else x_test_targets[np.ix_(rows, feat)]  # fraclint: disable=FRL016 -- one truth-matrix gather per mask group, amortized over its members
        preds = np.empty((len(rows), len(cols)))
        for j, t in enumerate(cols):
            fm = models[t]
            # ascontiguousarray: the reference loop gathered with np.ix_
            # (C-contiguous); a bare column gather is F-contiguous and
            # gemv's transpose dispatch there is not bit-identical.
            x_member = np.ascontiguousarray(x_obs[:, fm.input_ids])
            predictor = fm.predictor
            if type(predictor) is RidgeRegressor:
                # The gemv predict() runs, minus its isfinite re-scan of
                # rows already validated at fit/impute time.
                preds[:, j] = x_member @ predictor.coef_ + predictor.intercept_
            else:
                preds[:, j] = predictor.predict(x_member)
        error_type = key[1]
        surprisal = error_type.batch_surprisal(
            [models[t].error_model for t in cols], preds, truths
        )
        entropy = np.array([models[t].entropy for t in cols])
        cols_arr = np.asarray(cols, dtype=np.intp)
        if full:
            out[:, cols_arr] = surprisal - entropy
        else:
            out[np.ix_(rows, cols_arr)] = surprisal - entropy


def score_contributions(
    models: list[FeatureModel],
    x_test_imputed: np.ndarray,
    x_test_targets: np.ndarray,
) -> np.ndarray:
    """NS contribution matrix ``(n_test, n_models)`` for fitted models.

    Missing test targets contribute exactly zero (the NS definition's
    "otherwise" branch). The batched gather runs under a ``score.batch``
    span (nested inside the caller's ``score.contributions``) so traces
    separate the hot scoring work from the preprocessing around it —
    and so the ledger re-prices it against the retired ``score.gather``
    loop (``repro trace diff`` matches the renamed populations through
    their shared qualname).
    """
    n = x_test_imputed.shape[0]
    out = np.zeros((n, len(models)))
    if BATCHED_SCORING:
        with span(
            "score.batch", attrs={"n_models": len(models), "n_samples": int(n)}
        ):
            gather_surprisals(models, x_test_imputed, x_test_targets, out)
    else:
        with span(
            "score.gather", attrs={"n_models": len(models), "n_samples": int(n)}
        ):
            _gather_surprisals_scalar(models, x_test_imputed, x_test_targets, out)
    return out
