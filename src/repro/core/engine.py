"""The per-feature FRaC engine: cross-validated feature models.

One *work item* = one (target feature, predictor slot) pair. Executing an
item (``run_feature_task``):

1. selects the training rows where the target is observed;
2. k-fold cross-validates a fresh predictor to gather holdout
   (prediction, truth) pairs;
3. fits the error model (Gaussian residual / confusion matrix) on those
   pairs;
4. refits the predictor on all usable rows;
5. estimates the feature's training-set entropy.

Items only carry small picklable payloads (:class:`FeatureTask`); the
training matrix travels through the executor's shared-state channel (see
:mod:`repro.parallel.executor`), so process-mode workers inherit it via
fork instead of pickling it per item.

Batched execution
-----------------
:func:`run_feature_tasks` is the single entry point. When the configured
regressor advertises batching (:data:`~repro.learners.registry.
BATCHED_REGRESSORS`) and ``config.batched_training`` is on, real-valued
tasks are grouped by identical ``(rows, input_ids, fold layout)``
(:func:`plan_feature_batches`) and each group is executed by
:func:`run_feature_batch`: the row gathers, fold gathers, and the
learner's design-matrix factorization happen once per group instead of
once per feature, while every per-column float op replays the scalar
path verbatim (see :mod:`repro.learners.batched`). The batched path is
**byte-identical** to the per-feature path — NS scores, contributions,
``cv_mean_surprisal``, persisted artifacts — and preserves its
observable semantics: checkpoint journals keep per-feature keys (the two
paths' journals interchange), telemetry stays per-feature (batch items
run quiet; the orchestrator re-emits the task lifecycle per feature, and
``FoldTrained`` is emitted per (feature, fold) either way), and a failed
batch decomposes into per-feature execution under the caller's retry
policy. Deterministic fault injection (``fault_plan``) targets the
per-feature index space, so plans route the whole run down the
per-feature path.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import FRaCConfig
from repro.core.types import FeatureModel
from repro.data.schema import FeatureSchema
from repro.errormodels.confusion import ConfusionErrorModel
from repro.errormodels.entropy import discrete_entropy
from repro.errormodels.gaussian import GaussianErrorModel
from repro.errormodels.kde import GaussianKDE
from repro.learners.registry import (
    learner_accepts_param,
    make_batched_learner,
    make_learner,
    supports_batching,
)
from repro.parallel.executor import get_shared, run_tasks
from repro.parallel.faults import FailureReport, FaultPlan, RetryPolicy
from repro.parallel.profiling import cpu_seconds
from repro.parallel.resources import TaskCost, design_matrix_bytes, training_work_units
from repro.telemetry.events import (
    CheckpointHit,
    CheckpointMiss,
    FeatureTaskFinished,
    FeatureTaskStarted,
    FoldTrained,
)
from repro.telemetry.runtime import get_bus
from repro.telemetry.spans import span
from repro.utils.exceptions import DataError
from repro.utils.validation import check_2d


@dataclass(frozen=True)
class FeatureTask:
    """Picklable description of one (feature, predictor-slot) work item."""

    feature_id: int
    input_ids: np.ndarray
    seed: int
    slot: int = 0


@dataclass(frozen=True)
class SharedTrainState:
    """Read-only training state shared with all workers.

    ``x_imputed`` has every entry finite (model *inputs*); ``x_targets``
    keeps missing entries as NaN so target reads respect missingness. Both
    are in standardized units when the config says so.

    ``fold_seed`` pins the run's CV fold layout: every task with the same
    usable-row count draws the identical permutation (see
    :func:`fold_rng`), which is what lets the batched planner group tasks
    by ``(rows, input_ids)`` and know the fold layout matches too.
    """

    x_imputed: np.ndarray
    x_targets: np.ndarray
    schema: FeatureSchema
    config: FRaCConfig
    fold_seed: int = 0


def fold_rng(fold_seed: int, n: int) -> np.random.Generator:
    """The generator that deals the k-fold permutation for ``n`` rows.

    Seeded by ``(run fold seed, row count)`` — not by the per-task seed —
    so tasks whose usable rows coincide share one fold layout. Shared
    layouts are a *requirement* of the batched path (fold gathers are
    computed once per group) and harmless to the per-feature path: folds
    stay deterministic per run, and the per-task stream still
    independently seeds the learners.
    """
    return np.random.default_rng(np.random.SeedSequence([int(fold_seed), int(n)]))


def kfold_indices(
    n: int, k: int, rng: np.random.Generator
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Seeded k-fold split of ``range(n)`` into (train, holdout) pairs."""
    if n < 2:
        raise DataError(f"cannot cross-validate {n} samples")
    k = max(2, min(k, n))
    perm = rng.permutation(n)
    folds = np.array_split(perm, k)
    out = []
    for i in range(k):
        holdout = folds[i]
        # Known k-fold cost, deferred to the batched-training rewrite
        # (ROADMAP Open item 1): k small, indices O(n); the ledger
        # tracks it under run_feature_task's measured span time.
        train = np.concatenate([folds[j] for j in range(k) if j != i])  # fraclint: disable=FRL016
        out.append((train, holdout))
    return out


#: Fold-layout memo. The permutation depends only on ``(fold_seed, n,
#: k)`` — exactly the sharing contract :func:`fold_rng` encodes — so
#: every task with the same usable-row count reuses one dealt layout
#: instead of re-seeding a generator per task. Entries are treated as
#: read-only; the bound only guards pathological studies that sweep
#: thousands of distinct row counts. Thread-mode tasks share the memo,
#: so every access holds ``_FOLD_CACHE_LOCK`` (FRL021): the check-then-
#: insert and the capacity ``clear()`` must be atomic with respect to
#: each other.
_FOLD_CACHE: "dict[tuple[int, int, int], list[tuple[np.ndarray, np.ndarray]]]" = {}
_FOLD_CACHE_LOCK = threading.Lock()


def shared_folds(
    fold_seed: int, n: int, k: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Memoized ``kfold_indices(n, k, fold_rng(fold_seed, n))``.

    The memo is purely an optimization: the value for a key is a pure
    function of the key, so a process-mode worker repopulating its own
    copy-on-write snapshot recomputes the identical layout — losing the
    write at the harvest barrier costs time, never correctness (the
    audited FRL025 suppressions below).
    """
    key = (int(fold_seed), int(n), int(k))
    with _FOLD_CACHE_LOCK:
        folds = _FOLD_CACHE.get(key)
        if folds is None:
            folds = kfold_indices(n, k, fold_rng(fold_seed, n))
            if len(_FOLD_CACHE) >= 1024:
                _FOLD_CACHE.clear()  # fraclint: disable=FRL025 — pure memo; a worker-local clear only costs recompute
            _FOLD_CACHE[key] = folds  # fraclint: disable=FRL025 — pure memo; key determines value, lost writes recompute identically
    return folds


def _make_predictor(name: str, params: dict, seed: int):
    """Instantiate a learner, injecting the task seed when supported.

    Support is decided by inspecting the learner's signature
    (:func:`repro.learners.registry.learner_accepts_param`) rather than by
    catching ``TypeError``: a blanket except would also swallow the
    TypeError caused by a bad *user* parameter and retry without the seed,
    turning a configuration mistake into a silently nondeterministic run.
    Genuine construction errors always propagate.
    """
    if learner_accepts_param(name, "seed"):
        return make_learner(name, **{**params, "seed": seed})
    return make_learner(name, **params)


def feature_task_key(task: FeatureTask) -> tuple[int, int, int]:
    """Stable checkpoint-journal key for one work item.

    ``(feature_id, slot, seed)`` pins the task's RNG stream (the input
    draw and learner seed), and the task seed is spawned from the same
    root stream as the run's shared ``fold_seed`` — so equal keys within
    one detector configuration imply bit-identical results (the
    idempotence resume relies on), while any change to the root seed or
    task layout changes the keys and naturally invalidates stale journal
    entries. The batched executor path journals under these same
    per-feature keys, so batched and per-feature journals interchange.
    """
    return (int(task.feature_id), int(task.slot), int(task.seed))


def run_feature_task(task: FeatureTask) -> "tuple[FeatureModel, TaskCost] | None":
    """Execute one work item against the executor-shared training state.

    Returns ``None`` when the feature cannot support a model (too few
    observed values); the caller simply drops it from the NS sum, which is
    the "otherwise: 0" branch of the NS definition applied at train time.
    """
    shared: SharedTrainState = get_shared()
    cfg = shared.config
    start = cpu_seconds()

    target_col = shared.x_targets[:, task.feature_id]
    rows = np.flatnonzero(~np.isnan(target_col))
    if len(rows) < cfg.min_observed:
        return None
    y = target_col[rows]
    input_ids = np.asarray(task.input_ids, dtype=np.intp)
    x_in = shared.x_imputed[np.ix_(rows, input_ids)]

    spec = shared.schema[task.feature_id]
    rng = np.random.default_rng(task.seed)
    learner_seed = int(rng.integers(0, 2**31 - 1))
    if spec.is_categorical:
        make = lambda: _make_predictor(cfg.classifier, dict(cfg.classifier_params), learner_seed)
        error_model = ConfusionErrorModel(spec.arity, smoothing=cfg.confusion_smoothing)
        entropy = discrete_entropy(y, arity=spec.arity)
    else:
        make = lambda: _make_predictor(cfg.regressor, dict(cfg.regressor_params), learner_seed)
        error_model = GaussianErrorModel(sigma_floor=cfg.sigma_floor)
        entropy = GaussianKDE().fit(y).entropy()

    # Cross-validation pass: gather holdout (prediction, truth) pairs.
    # Fold events are worker-side: visible in serial/thread modes, muted in
    # forked process workers (whose bus is dropped; see executor._init_worker).
    bus = get_bus()
    preds = np.empty(len(rows))
    folds = shared_folds(shared.fold_seed, len(rows), cfg.n_folds)
    # THE per-feature fit loop the paper profiles (O(f) dispatch):
    # ranked #1 in docs/optimization-ledger.md. The batched path
    # (ROADMAP Open item 1, run_feature_batch below) replaces this loop
    # whenever the regressor supports batching; it stays as the scalar
    # path for categorical/unbatched learners and as the byte-equivalence
    # reference the proof harness compares against. The per-fold gathers
    # below copy rows each iteration for the same reason.
    for fold, (train_idx, holdout_idx) in enumerate(folds):  # fraclint: disable=FRL015
        model = make()
        model.fit(x_in[train_idx], y[train_idx])  # fraclint: disable=FRL016 -- per-fold row gather, batched with the fit loop (Open item 1)
        preds[holdout_idx] = model.predict(x_in[holdout_idx])  # fraclint: disable=FRL016 -- per-fold holdout gather, batched with the fit loop (Open item 1)
        if bus is not None:
            bus.emit(
                FoldTrained(
                    feature_id=int(task.feature_id),
                    slot=int(task.slot),
                    fold=fold,
                    n_folds=len(folds),
                )
            )
    error_model.fit(preds, y)
    cv_mean_surprisal = float(error_model.surprisal(preds, y).mean())

    # Final predictor: refit on every usable row.
    predictor = make().fit(x_in, y)

    cost = TaskCost(
        cpu_seconds=cpu_seconds() - start,
        design_bytes=design_matrix_bytes(len(rows), max(len(input_ids), 1)),
        model_bytes=int(getattr(predictor, "model_nbytes", 0)) + error_model.model_nbytes,
        work_units=training_work_units(len(folds) + 1, len(rows), len(input_ids)),
    )
    return (
        FeatureModel(
            feature_id=task.feature_id,
            input_ids=input_ids,
            predictor=predictor,
            error_model=error_model,
            entropy=entropy,
            cv_mean_surprisal=cv_mean_surprisal,
        ),
        cost,
    )


# -- batched execution -------------------------------------------------------

#: Largest feature group executed as one batch. Grouping is what amortizes
#: the gathers and the Gram factorization; the cap only bounds how much
#: completed work one mid-batch crash can lose before the next journal
#: append (batch results stream to the checkpoint per batch, not per run).
MAX_BATCH_FEATURES = 64


@dataclass(frozen=True)
class FeatureBatch:
    """A group of real-valued tasks sharing ``(rows, input_ids, folds)``.

    ``indices`` are the member positions in the task list handed to
    :func:`plan_feature_batches`, so the orchestrator can place results
    and re-emit per-feature telemetry without searching. ``group`` is a
    short content digest of the plan-group key (the observed-mask and
    input-id byte patterns), stamped onto the batch's ``fit.batch`` span
    so a trace alone reveals how the planner grouped the feature space.
    """

    tasks: tuple[FeatureTask, ...]
    indices: tuple[int, ...]
    group: str = ""


def batch_task_key(batch: FeatureBatch) -> tuple:
    """Journal key of a batch: the tuple of its members' per-feature keys."""
    return tuple(feature_task_key(task) for task in batch.tasks)


def plan_feature_batches(
    tasks: "list[FeatureTask]",
    shared: SharedTrainState,
    max_batch: int = MAX_BATCH_FEATURES,
) -> "tuple[list[FeatureBatch], list[int]]":
    """Group batchable tasks; return ``(batches, passthrough_indices)``.

    Tasks are batchable when their target is real-valued (categorical
    targets keep the per-feature classifier path). Group identity is the
    byte pattern of the target's observed-row mask plus the input-id
    array: equal masks mean equal usable rows, and — because the fold
    permutation is dealt by :func:`fold_rng` from the shared fold seed
    and the row count — equal rows imply an equal fold layout, completing
    the ``(rows, input_ids, fold-layout)`` grouping contract. Groups
    larger than ``max_batch`` split into consecutive chunks (bitwise
    results are independent of batch boundaries; only amortization and
    checkpoint granularity change).

    Ordering is deterministic: groups appear in first-member order and
    members in task order, so plans are identical across runs and modes.
    """
    batchable: "dict[tuple[bytes, bytes], list[int]]" = {}
    passthrough: list[int] = []
    for pos, task in enumerate(tasks):
        if shared.schema[task.feature_id].is_categorical:
            passthrough.append(pos)
            continue
        observed = ~np.isnan(shared.x_targets[:, task.feature_id])
        key = (
            observed.tobytes(),
            np.asarray(task.input_ids, dtype=np.intp).tobytes(),
        )
        batchable.setdefault(key, []).append(pos)
    batches: list[FeatureBatch] = []
    for key, positions in batchable.items():
        # Deterministic plan-group fingerprint: a content digest of the
        # grouping key itself, so equal groups carry equal labels across
        # runs, machines, and batch-size splits (telemetry join key only —
        # never fed back into computation).
        group = hashlib.sha256(key[0] + key[1]).hexdigest()[:12]
        for lo in range(0, len(positions), max_batch):
            chunk = positions[lo : lo + max_batch]
            batches.append(
                FeatureBatch(
                    tasks=tuple(tasks[p] for p in chunk),
                    indices=tuple(chunk),
                    group=group,
                )
            )
    return batches, passthrough


def run_feature_batch(batch: FeatureBatch) -> "list[tuple[FeatureModel, TaskCost] | None]":
    """Execute one task group against the executor-shared training state.

    Returns one per-member result in ``batch.tasks`` order, each exactly
    what :func:`run_feature_task` would have produced for that task: the
    row/fold gathers and the design-matrix factorization are shared per
    group, while every per-column operation (target validation,
    centering, the ``XᵀY`` product, the triangular solves, the error
    model, entropy) replays the scalar call sequence verbatim — see
    :mod:`repro.learners.batched` for why that is bitwise-preserving.

    Members share their rows by construction (:func:`plan_feature_batches`
    groups by the observed-row mask), so the under-``min_observed`` check
    decides once for the whole group.

    Each execution is bracketed by a ``fit.batch`` span whose attrs carry
    the batch size and the planner's group fingerprint — the measurement
    substrate for pricing per-group amortization from a trace alone
    (observation only; the batch wave's quiet task lifecycle and the
    byte-equivalence proof are unaffected).
    """
    with span(
        "fit.batch",
        attrs={"batch_size": len(batch.tasks), "group": batch.group},
    ):
        return _execute_feature_batch(batch)


def _execute_feature_batch(
    batch: FeatureBatch,
) -> "list[tuple[FeatureModel, TaskCost] | None]":
    shared: SharedTrainState = get_shared()
    cfg = shared.config
    start = cpu_seconds()

    first = batch.tasks[0]
    rows = np.flatnonzero(~np.isnan(shared.x_targets[:, first.feature_id]))
    if len(rows) < cfg.min_observed:
        return [None] * len(batch.tasks)
    input_ids = np.asarray(first.input_ids, dtype=np.intp)
    x_in = shared.x_imputed[np.ix_(rows, input_ids)]
    # One design validation for the whole group: every fold subset below
    # is a row slice of x_in, so finiteness here covers them all. The
    # solvers are told to skip their own re-check (check=False).
    check_2d(x_in, "X", allow_nan=False)
    ys = [shared.x_targets[:, task.feature_id][rows] for task in batch.tasks]

    learner = make_batched_learner(cfg.regressor, **dict(cfg.regressor_params))
    folds = shared_folds(shared.fold_seed, len(rows), cfg.n_folds)

    bus = get_bus()
    preds = [np.empty(len(rows)) for _ in batch.tasks]
    for fold, (train_idx, holdout_idx) in enumerate(folds):
        # One gather + one factorization per (group, fold) — the whole
        # point of the batch; the remaining per-column cost is O(n*d) gemv.
        solver = learner.solver(x_in[train_idx], check=False)  # fraclint: disable=FRL016 -- the amortized per-fold gather (one per group, not per feature); priced in the ledger under run_feature_tasks
        x_holdout = x_in[holdout_idx]  # fraclint: disable=FRL016 -- amortized holdout gather, shared by every member column
        for j, task in enumerate(batch.tasks):
            model = solver.fit_column(ys[j][train_idx])  # fraclint: disable=FRL016 -- per-column target gather; O(n) vector next to the shared O(n*d) factorization
            preds[j][holdout_idx] = model.predict(x_holdout)
            if bus is not None:
                bus.emit(
                    FoldTrained(
                        feature_id=int(task.feature_id),
                        slot=int(task.slot),
                        fold=fold,
                        n_folds=len(folds),
                    )
                )

    final = learner.solver(x_in, check=False)
    shared_cpu = cpu_seconds() - start
    out: "list[tuple[FeatureModel, TaskCost] | None]" = []
    # The batched tail (ROADMAP Open item 1): the expensive shared work —
    # gathers and the Gram factorization — is already hoisted into
    # ``learner.solver`` above; what remains per member is an O(n*d) gemv
    # column solve plus the error model, deliberately kept as per-column
    # scalar calls so each replays run_feature_task's float ops verbatim
    # (bitwise equivalence over raw speed; see repro.learners.batched).
    for j, task in enumerate(batch.tasks):  # fraclint: disable=FRL015
        per0 = cpu_seconds()
        y = ys[j]
        error_model = GaussianErrorModel(sigma_floor=cfg.sigma_floor)
        entropy = GaussianKDE().fit(y).entropy()
        error_model.fit(preds[j], y)
        cv_mean_surprisal = float(error_model.surprisal(preds[j], y).mean())
        predictor = final.fit_column(y)
        cost = TaskCost(
            # Shared work is split evenly; per-member tails are measured.
            # The deterministic components (bytes, work units) use the
            # same formulas as the per-feature path.
            cpu_seconds=shared_cpu / len(batch.tasks) + (cpu_seconds() - per0),
            design_bytes=design_matrix_bytes(len(rows), max(len(input_ids), 1)),
            model_bytes=int(getattr(predictor, "model_nbytes", 0))
            + error_model.model_nbytes,
            work_units=training_work_units(len(folds) + 1, len(rows), len(input_ids)),
        )
        out.append(
            (
                FeatureModel(
                    feature_id=task.feature_id,
                    input_ids=input_ids,
                    predictor=predictor,
                    error_model=error_model,
                    entropy=entropy,
                    cv_mean_surprisal=cv_mean_surprisal,
                ),
                cost,
            )
        )
    return out


class _FanoutJournal:
    """Checkpoint adapter fanning one batch append into per-feature appends.

    The batch wave journals through this wrapper so the on-disk journal
    only ever contains *per-feature* entries — the same keys and values
    the per-feature path writes, streamed per completed batch. Resume
    reads the journal at per-feature granularity (the orchestrator's
    pre-pass), so ``entries()`` is empty by construction: cached features
    never reach the batch wave.
    """

    def __init__(self, journal, batches: "list[FeatureBatch]") -> None:
        self._journal = journal
        self._keys = {batch_task_key(b): [feature_task_key(t) for t in b.tasks] for b in batches}
        self.path = getattr(journal, "path", "?")

    def entries(self) -> dict:
        return {}

    def append(self, key, value) -> None:
        for feature_key, feature_value in zip(self._keys[key], value):
            self._journal.append(feature_key, feature_value)


def run_feature_tasks(
    tasks: "list[FeatureTask]",
    shared: SharedTrainState,
    *,
    checkpoint=None,
    fault_plan: "FaultPlan | None" = None,
    failures: "FailureReport | None" = None,
) -> "list[tuple[FeatureModel, TaskCost] | None]":
    """Execute every work item, batched where the regressor supports it.

    The single training entry point: chooses between the batched executor
    path and the per-feature path, preserving the per-feature path's
    observable behaviour in either case (see the module docstring).
    ``fault_plan`` indices address the per-feature task list, so any plan
    routes execution down the per-feature path — which keeps every
    fault-injection proof exact, and lets a poison-plan resume prove that
    a batched-written journal replays with zero re-executions.
    """
    cfg = shared.config
    use_batched = (
        cfg.batched_training
        and fault_plan is None
        and supports_batching(cfg.regressor)
    )
    if use_batched:
        return _run_batched(tasks, shared, checkpoint, failures)
    # The reference path: one executor item per (feature, slot). run_tasks
    # itself picks fail-fast vs resilient from which arguments are set.
    return run_tasks(
        run_feature_task,
        tasks,
        shared=shared,
        config=cfg.execution,
        checkpoint=checkpoint,
        task_key=feature_task_key,
        fault_plan=fault_plan,
        failures=failures,
    )


def _run_batched(tasks, shared, checkpoint, failures):
    """Batched orchestration with per-feature observable semantics.

    1. *Checkpoint pre-pass* (per feature): cached results resolve without
       execution, emitting the same ``CheckpointHit``/``CheckpointMiss``
       and cached-``FeatureTaskFinished`` events, in the same task order,
       as the resilient per-feature scheduler.
    2. *Batch wave*: remaining batchable tasks run as quiet coarse items
       (no batch-level lifecycle events); completed batches stream to the
       journal through :class:`_FanoutJournal` at per-feature keys. Under
       a retry policy, transient faults retry at batch granularity and
       exhausted batches are *decomposed*, never skipped outright.
    3. *Lifecycle re-emission*: each batch-completed feature gets its
       ``FeatureTaskStarted``/``FeatureTaskFinished`` pair, so per-feature
       event counts are replay-identical with the per-feature path.
    4. *Decomposed + passthrough run*: members of failed batches and
       non-batchable (categorical) tasks execute per feature under the
       caller's own retry policy; their lifecycle events are the real
       ones. Their completions are journaled afterwards (skipped features
       are not journaled, matching the per-feature scheduler).
    """
    cfg = shared.config
    execution = cfg.execution
    bus = get_bus()
    n = len(tasks)
    keys = [feature_task_key(task) for task in tasks]
    results: "list" = [None] * n
    resilient = (
        execution.retry is not None or checkpoint is not None or failures is not None
    )

    # 1. Per-feature checkpoint pre-pass.
    pending: list[int] = list(range(n))
    if checkpoint is not None:
        completed = checkpoint.entries()
        pending = []
        for i, key in enumerate(keys):
            if key in completed:
                results[i] = completed[key]
                if bus is not None:
                    bus.emit(CheckpointHit(index=i, key=key))
                    bus.emit(
                        FeatureTaskFinished(
                            index=i, status="cached", attempts=0, key=key
                        )
                    )
            else:
                if bus is not None:
                    bus.emit(CheckpointMiss(index=i, key=key))
                pending.append(i)

    batches, passthrough = plan_feature_batches([tasks[i] for i in pending], shared)

    # 2. Batch wave (quiet: lifecycle is re-emitted per feature below).
    wave_failures = FailureReport()
    completed_batches: "list[tuple[FeatureBatch, list]]" = []
    leftover = [pending[pos] for pos in passthrough]
    if batches:
        wave_policy = None
        if resilient:
            base = execution.retry or RetryPolicy(max_retries=0, on_exhaustion="raise")
            wave_policy = replace(
                base,
                on_exhaustion="skip",
                task_timeout=(
                    None
                    if base.task_timeout is None
                    # A batch is up to max-batch features of work; scale the
                    # per-feature budget so grouping cannot induce timeouts.
                    else base.task_timeout * max(len(b.tasks) for b in batches)
                ),
            )
        wave_values = run_tasks(
            run_feature_batch,
            batches,
            shared=shared,
            config=replace(execution, retry=wave_policy),
            checkpoint=None if checkpoint is None else _FanoutJournal(checkpoint, batches),
            task_key=batch_task_key,
            failures=wave_failures if resilient else None,
            quiet=True,
        )
        failed_batches = set(wave_failures.indices())
        for b, (batch, values) in enumerate(zip(batches, wave_values)):
            if b in failed_batches or values is None:
                leftover.extend(pending[pos] for pos in batch.indices)
                continue
            completed_batches.append((batch, values))
            for pos, value in zip(batch.indices, values):
                results[pending[pos]] = value

    # 3. Re-emit the per-feature lifecycle for batch-completed features.
    if bus is not None and completed_batches:
        done = sorted(
            pending[pos] for batch, _ in completed_batches for pos in batch.indices
        )
        for i in done:
            bus.emit(FeatureTaskStarted(index=i, attempt=0, key=keys[i]))
            bus.emit(
                FeatureTaskFinished(
                    index=i, status="ok", attempts=1, key=keys[i], duration_s=None
                )
            )

    # 4. Decomposed batch members + passthrough tasks run per feature.
    if leftover:
        leftover.sort()
        sub = [tasks[i] for i in leftover]
        if resilient:
            report = failures if failures is not None else FailureReport()
            values = run_tasks(
                run_feature_task,
                sub,
                shared=shared,
                config=execution,
                task_key=feature_task_key,
                failures=report,
            )
            failed_keys = {f.key for f in report}
        else:
            values = run_tasks(
                run_feature_task,
                sub,
                shared=shared,
                config=execution,
                task_key=feature_task_key,
            )
            failed_keys = set()
        for i, value in zip(leftover, values):
            results[i] = value
            if checkpoint is not None and keys[i] not in failed_keys:
                checkpoint.append(keys[i], value)
    return results


def gather_surprisals(
    models: list[FeatureModel],
    x_test_imputed: np.ndarray,
    x_test_targets: np.ndarray,
    out: np.ndarray,
) -> None:
    """The per-model masked scoring gather, written into ``out`` in place.

    This loop is the optimization ledger's #1 measured finding
    (docs/optimization-ledger.md): one masked row copy per feature model.
    It lives in its own function so the ``score.gather`` span prices
    exactly this work — the batching rewrite (ROADMAP Open item 1,
    scoring half) starts here.
    """
    for t, fm in enumerate(models):
        truths = x_test_targets[:, fm.feature_id]
        observed = ~np.isnan(truths)
        if not observed.any():
            continue
        # Per-feature scoring gather: one masked copy per feature model,
        # batched together with the fit loop (ROADMAP Open item 1).
        preds = fm.predictor.predict(x_test_imputed[np.ix_(observed, fm.input_ids)])  # fraclint: disable=FRL016
        out[observed, t] = fm.error_model.surprisal(preds, truths[observed]) - fm.entropy  # fraclint: disable=FRL016 -- masked truth gather, batched with scoring (Open item 1)


def score_contributions(
    models: list[FeatureModel],
    x_test_imputed: np.ndarray,
    x_test_targets: np.ndarray,
) -> np.ndarray:
    """NS contribution matrix ``(n_test, n_models)`` for fitted models.

    Missing test targets contribute exactly zero (the NS definition's
    "otherwise" branch). The gather loop runs under a ``score.gather``
    span (nested inside the caller's ``score.contributions``) so traces
    separate the hot masked-copy loop from the preprocessing around it.
    """
    n = x_test_imputed.shape[0]
    out = np.zeros((n, len(models)))
    with span(
        "score.gather", attrs={"n_models": len(models), "n_samples": int(n)}
    ):
        gather_surprisals(models, x_test_imputed, x_test_targets, out)
    return out
