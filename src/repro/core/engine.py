"""The per-feature FRaC engine: cross-validated feature models.

One *work item* = one (target feature, predictor slot) pair. Executing an
item (``run_feature_task``):

1. selects the training rows where the target is observed;
2. k-fold cross-validates a fresh predictor to gather holdout
   (prediction, truth) pairs;
3. fits the error model (Gaussian residual / confusion matrix) on those
   pairs;
4. refits the predictor on all usable rows;
5. estimates the feature's training-set entropy.

Items only carry small picklable payloads (:class:`FeatureTask`); the
training matrix travels through the executor's shared-state channel (see
:mod:`repro.parallel.executor`), so process-mode workers inherit it via
fork instead of pickling it per item.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import FRaCConfig
from repro.core.types import FeatureModel
from repro.data.schema import FeatureSchema
from repro.errormodels.confusion import ConfusionErrorModel
from repro.errormodels.entropy import discrete_entropy
from repro.errormodels.gaussian import GaussianErrorModel
from repro.errormodels.kde import GaussianKDE
from repro.learners.registry import learner_accepts_param, make_learner
from repro.parallel.executor import get_shared
from repro.parallel.profiling import cpu_seconds
from repro.parallel.resources import TaskCost, design_matrix_bytes, training_work_units
from repro.telemetry.events import FoldTrained
from repro.telemetry.runtime import get_bus
from repro.utils.exceptions import DataError


@dataclass(frozen=True)
class FeatureTask:
    """Picklable description of one (feature, predictor-slot) work item."""

    feature_id: int
    input_ids: np.ndarray
    seed: int
    slot: int = 0


@dataclass(frozen=True)
class SharedTrainState:
    """Read-only training state shared with all workers.

    ``x_imputed`` has every entry finite (model *inputs*); ``x_targets``
    keeps missing entries as NaN so target reads respect missingness. Both
    are in standardized units when the config says so.
    """

    x_imputed: np.ndarray
    x_targets: np.ndarray
    schema: FeatureSchema
    config: FRaCConfig


def kfold_indices(
    n: int, k: int, rng: np.random.Generator
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Seeded k-fold split of ``range(n)`` into (train, holdout) pairs."""
    if n < 2:
        raise DataError(f"cannot cross-validate {n} samples")
    k = max(2, min(k, n))
    perm = rng.permutation(n)
    folds = np.array_split(perm, k)
    out = []
    for i in range(k):
        holdout = folds[i]
        # Known k-fold cost, deferred to the batched-training rewrite
        # (ROADMAP Open item 1): k small, indices O(n); the ledger
        # tracks it under run_feature_task's measured span time.
        train = np.concatenate([folds[j] for j in range(k) if j != i])  # fraclint: disable=FRL016
        out.append((train, holdout))
    return out


def _make_predictor(name: str, params: dict, seed: int):
    """Instantiate a learner, injecting the task seed when supported.

    Support is decided by inspecting the learner's signature
    (:func:`repro.learners.registry.learner_accepts_param`) rather than by
    catching ``TypeError``: a blanket except would also swallow the
    TypeError caused by a bad *user* parameter and retry without the seed,
    turning a configuration mistake into a silently nondeterministic run.
    Genuine construction errors always propagate.
    """
    if learner_accepts_param(name, "seed"):
        return make_learner(name, **{**params, "seed": seed})
    return make_learner(name, **params)


def feature_task_key(task: FeatureTask) -> tuple[int, int, int]:
    """Stable checkpoint-journal key for one work item.

    ``(feature_id, slot, seed)`` pins the task's RNG stream, and the
    stream pins the CV folds, the input draw, and the learner seed — so
    equal keys imply bit-identical results (the idempotence resume relies
    on), while any change to the root seed or task layout changes the keys
    and naturally invalidates stale journal entries.
    """
    return (int(task.feature_id), int(task.slot), int(task.seed))


def run_feature_task(task: FeatureTask) -> "tuple[FeatureModel, TaskCost] | None":
    """Execute one work item against the executor-shared training state.

    Returns ``None`` when the feature cannot support a model (too few
    observed values); the caller simply drops it from the NS sum, which is
    the "otherwise: 0" branch of the NS definition applied at train time.
    """
    shared: SharedTrainState = get_shared()
    cfg = shared.config
    start = cpu_seconds()

    target_col = shared.x_targets[:, task.feature_id]
    rows = np.flatnonzero(~np.isnan(target_col))
    if len(rows) < cfg.min_observed:
        return None
    y = target_col[rows]
    input_ids = np.asarray(task.input_ids, dtype=np.intp)
    x_in = shared.x_imputed[np.ix_(rows, input_ids)]

    spec = shared.schema[task.feature_id]
    rng = np.random.default_rng(task.seed)
    learner_seed = int(rng.integers(0, 2**31 - 1))
    if spec.is_categorical:
        make = lambda: _make_predictor(cfg.classifier, dict(cfg.classifier_params), learner_seed)
        error_model = ConfusionErrorModel(spec.arity, smoothing=cfg.confusion_smoothing)
        entropy = discrete_entropy(y, arity=spec.arity)
    else:
        make = lambda: _make_predictor(cfg.regressor, dict(cfg.regressor_params), learner_seed)
        error_model = GaussianErrorModel(sigma_floor=cfg.sigma_floor)
        entropy = GaussianKDE().fit(y).entropy()

    # Cross-validation pass: gather holdout (prediction, truth) pairs.
    # Fold events are worker-side: visible in serial/thread modes, muted in
    # forked process workers (whose bus is dropped; see executor._init_worker).
    bus = get_bus()
    preds = np.empty(len(rows))
    folds = kfold_indices(len(rows), cfg.n_folds, rng)
    # THE per-feature fit loop the paper profiles (O(f) dispatch):
    # ranked #1 in docs/optimization-ledger.md and deferred to the
    # batched-learner rewrite (ROADMAP Open item 1). The per-fold
    # gathers below copy rows each iteration for the same reason.
    for fold, (train_idx, holdout_idx) in enumerate(folds):  # fraclint: disable=FRL015
        model = make()
        model.fit(x_in[train_idx], y[train_idx])  # fraclint: disable=FRL016 -- per-fold row gather, batched with the fit loop (Open item 1)
        preds[holdout_idx] = model.predict(x_in[holdout_idx])  # fraclint: disable=FRL016 -- per-fold holdout gather, batched with the fit loop (Open item 1)
        if bus is not None:
            bus.emit(
                FoldTrained(
                    feature_id=int(task.feature_id),
                    slot=int(task.slot),
                    fold=fold,
                    n_folds=len(folds),
                )
            )
    error_model.fit(preds, y)
    cv_mean_surprisal = float(error_model.surprisal(preds, y).mean())

    # Final predictor: refit on every usable row.
    predictor = make().fit(x_in, y)

    cost = TaskCost(
        cpu_seconds=cpu_seconds() - start,
        design_bytes=design_matrix_bytes(len(rows), max(len(input_ids), 1)),
        model_bytes=int(getattr(predictor, "model_nbytes", 0)) + error_model.model_nbytes,
        work_units=training_work_units(len(folds) + 1, len(rows), len(input_ids)),
    )
    return (
        FeatureModel(
            feature_id=task.feature_id,
            input_ids=input_ids,
            predictor=predictor,
            error_model=error_model,
            entropy=entropy,
            cv_mean_surprisal=cv_mean_surprisal,
        ),
        cost,
    )


def score_contributions(
    models: list[FeatureModel],
    x_test_imputed: np.ndarray,
    x_test_targets: np.ndarray,
) -> np.ndarray:
    """NS contribution matrix ``(n_test, n_models)`` for fitted models.

    Missing test targets contribute exactly zero (the NS definition's
    "otherwise" branch).
    """
    n = x_test_imputed.shape[0]
    out = np.zeros((n, len(models)))
    for t, fm in enumerate(models):
        truths = x_test_targets[:, fm.feature_id]
        observed = ~np.isnan(truths)
        if not observed.any():
            continue
        # Per-feature scoring gather: one masked copy per feature model,
        # batched together with the fit loop (ROADMAP Open item 1).
        preds = fm.predictor.predict(x_test_imputed[np.ix_(observed, fm.input_ids)])  # fraclint: disable=FRL016
        out[observed, t] = fm.error_model.surprisal(preds, truths[observed]) - fm.entropy  # fraclint: disable=FRL016 -- masked truth gather, batched with scoring (Open item 1)
    return out
