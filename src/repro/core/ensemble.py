"""FRaC ensembles (paper §II-C).

Because NS is a sum of per-feature terms, ensembling is a per-feature
combine: within each member, a feature's predictor slots add (the NS
``j``-sum); *across* members, a feature covered by several members
contributes the **median** of its per-member scores; the sample's ensemble
NS is the sum over all features covered by at least one member. The paper
runs ensembles of 10 random full-filter members at p = 0.05 and of 10
diverse members at p = 1/20.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.config import FRaCConfig
from repro.core.diverse import DiverseFRaC
from repro.core.filtering import FilteredFRaC
from repro.core.types import AnomalyDetector, ContributionMatrix
from repro.data.schema import FeatureSchema
from repro.parallel.faults import FailureReport
from repro.parallel.resources import ResourceReport
from repro.telemetry.spans import span
from repro.utils.exceptions import DataError, NotFittedError
from repro.utils.rng import spawn_seeds
from repro.utils.validation import check_2d

#: A member factory builds one (unfitted) detector from its member index
#: and seed. Members must expose ``contributions``.
MemberFactory = Callable[[int, np.random.SeedSequence], AnomalyDetector]


def combine_contributions(members: Sequence[ContributionMatrix]) -> np.ndarray:
    """Median-per-feature ensemble NS scores (paper §II-C).

    Within a member, slots sharing a feature id are summed first; across
    members, each feature's score is the median over the members that cover
    it; the result is the per-sample sum over covered features.
    """
    if not members:
        raise DataError("cannot combine zero ensemble members")
    n = members[0].n_samples
    if any(m.n_samples != n for m in members):
        raise DataError("ensemble members scored different numbers of samples")

    # feature id -> list of per-member (n,) score vectors
    per_feature: dict[int, list[np.ndarray]] = {}
    for cm in members:
        member_feature_totals: dict[int, np.ndarray] = {}
        for t, fid in enumerate(cm.feature_ids):
            fid = int(fid)
            if fid in member_feature_totals:
                member_feature_totals[fid] = member_feature_totals[fid] + cm.values[:, t]
            else:
                member_feature_totals[fid] = cm.values[:, t]
        for fid, vec in member_feature_totals.items():
            per_feature.setdefault(fid, []).append(vec)

    total = np.zeros(n)
    for vecs in per_feature.values():
        if len(vecs) == 1:
            total += vecs[0]
        else:
            # One stack per feature id over <= n_members short vectors;
            # bounded by the ensemble size, not the data scale.
            total += np.median(np.stack(vecs), axis=0)  # fraclint: disable=FRL016
    return total


class FRaCEnsemble(AnomalyDetector):
    """An ensemble of independently-seeded FRaC variant members."""

    def __init__(
        self,
        member_factory: MemberFactory,
        n_members: int = 10,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        if n_members < 1:
            raise DataError(f"n_members must be >= 1; got {n_members}")
        self.member_factory = member_factory
        self.n_members = int(n_members)
        self._rng = rng
        self.members_: "list[AnomalyDetector] | None" = None
        #: Union of the members' per-feature failure reports (features a
        #: member dropped after exhausting retries; see repro.parallel).
        self.failure_report_: "FailureReport | None" = None

    def fit(self, x_train: np.ndarray, schema: FeatureSchema) -> "FRaCEnsemble":
        x_train = check_2d(x_train, "x_train")
        seeds = spawn_seeds(self._rng, self.n_members)
        members = []
        report = FailureReport()
        for i, seed in enumerate(seeds):
            with span(f"ensemble.member[{i}]"):
                member = self.member_factory(i, seed)
                member.fit(x_train, schema)
            members.append(member)
            member_report = getattr(member, "failure_report_", None)
            if member_report is not None:
                report.extend(member_report)
        self.members_ = members
        self.failure_report_ = report
        return self

    def score(self, x_test: np.ndarray) -> np.ndarray:
        if self.members_ is None:
            raise NotFittedError("FRaCEnsemble is not fitted; call fit() first")
        x_test = check_2d(x_test, "x_test")
        return combine_contributions([m.contributions(x_test) for m in self.members_])

    @property
    def resources(self) -> ResourceReport:
        """Members run sequentially: times add, memory peaks take the max."""
        if self.members_ is None:
            raise NotFittedError("FRaCEnsemble is not fitted")
        total = self.members_[0].resources
        for m in self.members_[1:]:
            total = total + m.resources
        return total

    def structure(self) -> list[dict[int, np.ndarray]]:
        if self.members_ is None:
            raise NotFittedError("FRaCEnsemble is not fitted")
        return [m.structure() for m in self.members_]


# Factories are picklable callables (not closures) so fitted ensembles can
# be persisted with repro.persistence.


class _RandomFilterFactory:
    def __init__(self, p: float, config: "FRaCConfig | None") -> None:
        self.p = p
        self.config = config

    def __call__(self, i: int, seed: np.random.SeedSequence) -> FilteredFRaC:
        return FilteredFRaC(
            p=self.p, method="random", mode="full", config=self.config, rng=seed
        )


class _DiverseFactory:
    def __init__(self, p: float, config: "FRaCConfig | None") -> None:
        self.p = p
        self.config = config

    def __call__(self, i: int, seed: np.random.SeedSequence) -> DiverseFRaC:
        return DiverseFRaC(p=self.p, config=self.config, rng=seed)


def random_filter_ensemble(
    p: float = 0.05,
    n_members: int = 10,
    config: "FRaCConfig | None" = None,
    rng: "int | np.random.Generator | None" = None,
) -> FRaCEnsemble:
    """The paper's "Ensemble of Random Filtering": 10 full random filters
    at 5% kept, combined by per-feature median (§III-B1)."""
    return FRaCEnsemble(_RandomFilterFactory(p, config), n_members=n_members, rng=rng)


def diverse_ensemble(
    p: float = 1.0 / 20.0,
    n_members: int = 10,
    config: "FRaCConfig | None" = None,
    rng: "int | np.random.Generator | None" = None,
) -> FRaCEnsemble:
    """The paper's "Diverse Ensemble": 10 diverse FRaC members at p = 1/20
    (chosen to compare fairly with the filtering ensembles, §III-B2)."""
    return FRaCEnsemble(_DiverseFactory(p, config), n_members=n_members, rng=rng)
