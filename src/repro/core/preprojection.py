"""JL pre-projection FRaC (paper §II-D, Fig. 2).

Pipeline: impute/standardize -> 1-hot encode categoricals -> concatenate
-> apply a Johnson-Lindenstrauss random projection to ``k`` dimensions ->
run *ordinary* FRaC in the projected, all-real space. Every projected
feature is a linear combination of original features, so (unlike original
features) it is very unlikely to be unlearnable — the noise-mitigation
argument of §II-D. The price is interpretability, partially recovered by
:meth:`JLFRaC.feature_influence`.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FRaCConfig
from repro.core.frac import FRaC
from repro.core.imputation import Preprocessor
from repro.core.types import AnomalyDetector, ContributionMatrix
from repro.data.schema import FeatureSchema
from repro.parallel.profiling import cpu_seconds
from repro.parallel.resources import ResourceReport
from repro.projection.jl import JLTransform
from repro.telemetry.runtime import get_bus
from repro.telemetry.spans import span
from repro.projection.onehot import OneHotEncoder
from repro.utils.exceptions import NotFittedError
from repro.utils.rng import spawn_seeds
from repro.utils.validation import check_2d


class JLFRaC(AnomalyDetector):
    """FRaC in a JL-projected space.

    Parameters
    ----------
    n_components:
        Projected dimension ``k`` (the paper uses 1024, and 2048/4096 in
        the schizophrenia sweep of Fig. 3).
    kind:
        JL matrix family (``"gaussian"``, ``"uniform"``, ``"sparse"``).
    config:
        Inner FRaC configuration. Only the regressor matters: the
        projected space is all-real.
    """

    def __init__(
        self,
        n_components: int = 1024,
        kind: str = "gaussian",
        config: "FRaCConfig | None" = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        self.n_components = int(n_components)
        self.kind = kind
        self.config = config or FRaCConfig()
        self._rng = rng
        self._pre: "Preprocessor | None" = None
        self._encoder: "OneHotEncoder | None" = None
        self.projection_: "JLTransform | None" = None
        self._inner: "FRaC | None" = None
        self._projection_cpu: float = 0.0
        self._projection_work: int = 0
        self._projected_schema: "FeatureSchema | None" = None

    def _project(self, x: np.ndarray) -> np.ndarray:
        start = cpu_seconds()
        with span("jl.project"):
            encoded = self._encoder.transform(self._pre.transform(x))
            out = self.projection_.transform(encoded)
        self._projection_cpu += cpu_seconds() - start
        # One matrix multiply: n x d_onehot x k multiply-adds.
        work = x.shape[0] * self._encoder.width * self.n_components
        self._projection_work += work
        bus = get_bus()
        if bus is not None:
            bus.metrics.counter("jl.projections").inc()
            bus.metrics.counter("jl.work_units").inc(work)
        return out

    def fit(self, x_train: np.ndarray, schema: FeatureSchema) -> "JLFRaC":
        x_train = check_2d(x_train, "x_train")
        seed_jl, seed_inner = spawn_seeds(self._rng, 2)
        self._projection_cpu = 0.0
        self._projection_work = 0
        self._pre = Preprocessor(schema, standardize=self.config.standardize).fit(x_train)
        self._encoder = OneHotEncoder(schema)
        self.projection_ = JLTransform(self.n_components, kind=self.kind, rng=seed_jl)
        self.projection_.fit(self._encoder.width)
        z_train = self._project(x_train)
        self._projected_schema = FeatureSchema.all_real(
            self.n_components, names=[f"jl{i}" for i in range(self.n_components)]
        )
        # The projected space is dense and already standardized in scale;
        # inner FRaC re-standardizes harmlessly.
        self._inner = FRaC(self.config, resident_features=self.n_components, rng=seed_inner)
        self._inner.fit(z_train, self._projected_schema)
        return self

    def contributions(self, x_test: np.ndarray) -> ContributionMatrix:
        """Contributions over *projected* components (feature ids are
        component indices, not original features)."""
        self._check_fitted()
        return self._inner.contributions(self._project(check_2d(x_test, "x_test")))

    def score(self, x_test: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return self.contributions(x_test).ns_scores()

    @property
    def resources(self) -> ResourceReport:
        """Inner FRaC cost plus the projection pass and the JL matrix."""
        self._check_fitted()
        inner = self._inner.resources
        return ResourceReport(
            cpu_seconds=inner.cpu_seconds + self._projection_cpu,
            memory_bytes=inner.memory_bytes + int(self.projection_.matrix_.nbytes),
            n_tasks=inner.n_tasks,
            work_units=inner.work_units + self._projection_work,
        )

    def structure(self) -> dict[int, np.ndarray]:
        self._check_fitted()
        return self._inner.structure()

    def feature_influence(self) -> np.ndarray:
        """Aggregate |projection weight| per *original* feature.

        The paper's §II-D interpretability workaround: input features
        present in many projected components (weighted by magnitude) can be
        surfaced even though individual projected models are opaque.
        """
        self._check_fitted()
        per_encoded = np.abs(self.projection_.matrix_).sum(axis=0)
        return self._encoder.aggregate_to_features(per_encoded)

    def _check_fitted(self) -> None:
        if self._inner is None:
            raise NotFittedError("JLFRaC is not fitted; call fit() first")
