"""Missing-value imputation and feature standardization.

FRaC itself treats a *missing test target* as a zero NS contribution, but
predictors need finite *inputs*, so missing input entries are imputed from
training statistics: column mean for real features, column mode for
categorical ones. Continuous columns are optionally standardized with
training mean/std — NS is invariant under affine per-feature rescaling
(surprisal and entropy shift by the same ``ln a``), but the learners'
regularization and tolerance parameters are not, so standardization keeps
SVR hyper-parameters meaningful across features.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import FeatureSchema
from repro.utils.exceptions import DataError
from repro.utils.validation import check_2d, check_fitted


class Preprocessor:
    """Fit train-set statistics; impute (and standardize) matrices."""

    def __init__(self, schema: FeatureSchema, standardize: bool = True) -> None:
        self.schema = schema
        self.standardize = standardize
        self.fill_: "np.ndarray | None" = None
        self.mean_: "np.ndarray | None" = None
        self.scale_: "np.ndarray | None" = None

    def fit(self, x: np.ndarray) -> "Preprocessor":
        x = check_2d(x, "x_train")
        self.schema.validate_matrix(x)
        n_features = x.shape[1]
        fill = np.zeros(n_features)
        mean = np.zeros(n_features)
        scale = np.ones(n_features)
        missing = np.isnan(x)
        n_observed = x.shape[0] - missing.sum(axis=0)
        if n_features and not n_observed.all():
            # Report the lowest offending column, as the per-column loop did.
            j = int(np.flatnonzero(n_observed == 0)[0])
            raise DataError(f"feature {j} has no observed training values")
        is_real = np.zeros(n_features, dtype=bool)
        is_real[self.schema.real_indices] = True
        has_nan = missing.any(axis=0)

        # NaN-free real columns take the batched path: gathering rows of
        # the transpose yields a C-contiguous (k, n) matrix whose axis-1
        # reductions run the same 1-D pairwise kernel as a per-column
        # ``col.mean()`` / ``col.std()`` — bitwise-equal statistics.
        # ``np.nanmean`` over the full matrix would NOT be: with NaNs
        # present it reduces in a different association order than the
        # compacted ``col[~isnan]`` the per-column path used.
        complete = np.flatnonzero(is_real & ~has_nan)
        if complete.size:
            xt = x.T[complete]
            mean[complete] = xt.mean(axis=1)
            sd = xt.std(axis=1)
            scale[complete] = np.where(sd > 0.0, sd, 1.0)
        for j in np.flatnonzero(is_real & has_nan):  # fraclint: disable=FRL015 -- NaN-containing real columns must replay the compacted scalar reduction; the batched kernel above covers the NaN-free (common) case
            col = x[:, j]
            observed = col[~np.isnan(col)]  # fraclint: disable=FRL016 -- compaction is the point: nanmean's association order differs bitwise
            mean[j] = float(observed.mean())
            sd_j = float(observed.std())
            scale[j] = sd_j if sd_j > 0 else 1.0
        if not self.standardize:
            # Fill value in *standardized* units is 0 (the mean); raw
            # units fall back to the column mean itself.
            fill[is_real] = mean[is_real]
        for j in np.flatnonzero(~is_real):  # fraclint: disable=FRL015 -- per-column mode via np.unique; categorical columns are few and a batched mode has no shared kernel to amortize
            col = x[:, j]
            observed = col[~np.isnan(col)]  # fraclint: disable=FRL016 -- mode needs the compacted column; see note above
            codes, counts = np.unique(observed.astype(np.intp), return_counts=True)
            fill[j] = float(codes[np.argmax(counts)])
        self.fill_ = fill
        self.mean_ = mean
        self.scale_ = scale
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Standardized (real columns) + imputed copy of ``x``."""
        check_fitted(self, "fill_")
        x = check_2d(x, "x")
        self.schema.validate_matrix(x)
        out = x.copy()
        real = self.schema.real_indices
        if self.standardize and len(real):
            out[:, real] = (out[:, real] - self.mean_[real]) / self.scale_[real]
        missing = np.isnan(out)
        if missing.any():
            out[missing] = np.broadcast_to(self.fill_, out.shape)[missing]
        return out

    def transform_keep_missing(self, x: np.ndarray) -> np.ndarray:
        """Standardize only — missing entries stay NaN (for *target* reads)."""
        check_fitted(self, "fill_")
        x = check_2d(x, "x")
        self.schema.validate_matrix(x)
        out = x.copy()
        real = self.schema.real_indices
        if self.standardize and len(real):
            out[:, real] = (out[:, real] - self.mean_[real]) / self.scale_[real]
        return out
