"""Missing-value imputation and feature standardization.

FRaC itself treats a *missing test target* as a zero NS contribution, but
predictors need finite *inputs*, so missing input entries are imputed from
training statistics: column mean for real features, column mode for
categorical ones. Continuous columns are optionally standardized with
training mean/std — NS is invariant under affine per-feature rescaling
(surprisal and entropy shift by the same ``ln a``), but the learners'
regularization and tolerance parameters are not, so standardization keeps
SVR hyper-parameters meaningful across features.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import FeatureSchema
from repro.utils.exceptions import DataError
from repro.utils.validation import check_2d, check_fitted


class Preprocessor:
    """Fit train-set statistics; impute (and standardize) matrices."""

    def __init__(self, schema: FeatureSchema, standardize: bool = True) -> None:
        self.schema = schema
        self.standardize = standardize
        self.fill_: "np.ndarray | None" = None
        self.mean_: "np.ndarray | None" = None
        self.scale_: "np.ndarray | None" = None

    def fit(self, x: np.ndarray) -> "Preprocessor":
        x = check_2d(x, "x_train")
        self.schema.validate_matrix(x)
        n_features = x.shape[1]
        fill = np.zeros(n_features)
        mean = np.zeros(n_features)
        scale = np.ones(n_features)
        # Per-feature stats loop: batchable via nan-aware reductions
        # (np.nanmean/np.nanstd); deferred to the batched-training
        # rewrite (ROADMAP Open item 1), tracked in the ledger.
        for j in range(n_features):  # fraclint: disable=FRL015
            col = x[:, j]
            observed = col[~np.isnan(col)]  # fraclint: disable=FRL016 -- per-feature NaN mask, goes away with the nan-aware batch rewrite
            if observed.size == 0:
                raise DataError(f"feature {j} has no observed training values")
            if self.schema[j].is_categorical:
                codes, counts = np.unique(observed.astype(np.intp), return_counts=True)
                fill[j] = float(codes[np.argmax(counts)])
            else:
                mean[j] = float(observed.mean())
                sd = float(observed.std())
                scale[j] = sd if sd > 0 else 1.0
                # Fill value in *standardized* units is 0 (the mean).
                fill[j] = 0.0 if self.standardize else mean[j]
        self.fill_ = fill
        self.mean_ = mean
        self.scale_ = scale
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Standardized (real columns) + imputed copy of ``x``."""
        check_fitted(self, "fill_")
        x = check_2d(x, "x")
        self.schema.validate_matrix(x)
        out = x.copy()
        real = self.schema.real_indices
        if self.standardize and len(real):
            out[:, real] = (out[:, real] - self.mean_[real]) / self.scale_[real]
        missing = np.isnan(out)
        if missing.any():
            out[missing] = np.broadcast_to(self.fill_, out.shape)[missing]
        return out

    def transform_keep_missing(self, x: np.ndarray) -> np.ndarray:
        """Standardize only — missing entries stay NaN (for *target* reads)."""
        check_fitted(self, "fill_")
        x = check_2d(x, "x")
        self.schema.validate_matrix(x)
        out = x.copy()
        real = self.schema.real_indices
        if self.standardize and len(real):
            out[:, real] = (out[:, real] - self.mean_[real]) / self.scale_[real]
        return out
