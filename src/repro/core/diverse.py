"""Diverse FRaC (paper §II-B).

Every feature keeps a model, but each model's inputs are an independent
random subset: feature ``j != i`` feeds the predictor of feature ``i`` with
probability ``p``. This halves (at ``p = 1/2``) each learning problem,
reduces overfitting, and lets subtle patterns be learned when the features
carrying a masking stronger pattern happen to be absent. Optionally more
than one predictor per feature is trained, each with its own subset
(``n_predictors``), at proportional extra cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FRaCConfig
from repro.core.frac import FRaC, diverse_selector
from repro.core.types import AnomalyDetector, ContributionMatrix
from repro.data.schema import FeatureSchema
from repro.parallel.resources import ResourceReport
from repro.utils.exceptions import NotFittedError
from repro.utils.rng import spawn_seeds
from repro.utils.validation import check_2d, check_probability


class DiverseFRaC(AnomalyDetector):
    """FRaC with per-feature random input subsets.

    Parameters
    ----------
    p:
        Probability that each other feature is an input (the paper runs
        ``p = 1/2`` standalone and ``p = 1/20`` inside ensembles).
    n_predictors:
        Independent predictors (input subsets) per feature.
    config, rng:
        Passed to the inner :class:`FRaC`.
    """

    def __init__(
        self,
        p: float = 0.5,
        n_predictors: int = 1,
        config: "FRaCConfig | None" = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        check_probability(p, "p")
        self.p = float(p)
        base = config or FRaCConfig()
        # The j-sum of the NS formula: predictor multiplicity lives in the
        # engine config.
        if n_predictors != base.n_predictors:
            base = FRaCConfig(
                **{
                    **{f: getattr(base, f) for f in base.__dataclass_fields__},
                    "n_predictors": n_predictors,
                }
            )
        self.config = base
        self._rng = rng
        self._inner: "FRaC | None" = None

    def fit(self, x_train: np.ndarray, schema: FeatureSchema) -> "DiverseFRaC":
        x_train = check_2d(x_train, "x_train")
        (seed_inner,) = spawn_seeds(self._rng, 1)
        self._inner = FRaC(
            self.config,
            input_selector=diverse_selector(len(schema), self.p),
            rng=seed_inner,
        )
        self._inner.fit(x_train, schema)
        return self

    def contributions(self, x_test: np.ndarray) -> ContributionMatrix:
        self._check_fitted()
        return self._inner.contributions(x_test)

    def score(self, x_test: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return self._inner.score(x_test)

    def structure(self) -> dict[int, np.ndarray]:
        self._check_fitted()
        return self._inner.structure()

    @property
    def resources(self) -> ResourceReport:
        self._check_fitted()
        return self._inner.resources

    def model_quality(self) -> np.ndarray:
        self._check_fitted()
        return self._inner.model_quality()

    def _check_fitted(self) -> None:
        if self._inner is None:
            raise NotFittedError("DiverseFRaC is not fitted; call fit() first")
