"""FRaC core: the NS engine, the detector, and the scalable variants."""

from repro.core.config import FRaCConfig
from repro.core.diverse import DiverseFRaC
from repro.core.engine import (
    FeatureBatch,
    FeatureTask,
    kfold_indices,
    plan_feature_batches,
    run_feature_batch,
    run_feature_task,
    run_feature_tasks,
)
from repro.core.ensemble import (
    FRaCEnsemble,
    combine_contributions,
    diverse_ensemble,
    random_filter_ensemble,
)
from repro.core.filtering import (
    FilteredFRaC,
    entropy_filter,
    filter_size,
    random_filter,
)
from repro.core.frac import (
    FRaC,
    all_others_selector,
    diverse_selector,
    fixed_inputs_selector,
    subset_selector,
)
from repro.core.imputation import Preprocessor
from repro.core.interpretation import (
    FeatureContribution,
    SampleExplanation,
    explain_samples,
    jl_feature_attribution,
    model_report,
)
from repro.core.preprojection import JLFRaC
from repro.core.types import AnomalyDetector, ContributionMatrix, FeatureModel

__all__ = [
    "FRaCConfig",
    "FRaC",
    "AnomalyDetector",
    "ContributionMatrix",
    "FeatureModel",
    "FeatureTask",
    "FeatureBatch",
    "kfold_indices",
    "plan_feature_batches",
    "run_feature_task",
    "run_feature_tasks",
    "run_feature_batch",
    "Preprocessor",
    "all_others_selector",
    "subset_selector",
    "diverse_selector",
    "fixed_inputs_selector",
    "FilteredFRaC",
    "random_filter",
    "entropy_filter",
    "filter_size",
    "DiverseFRaC",
    "FRaCEnsemble",
    "combine_contributions",
    "random_filter_ensemble",
    "diverse_ensemble",
    "JLFRaC",
    "FeatureContribution",
    "SampleExplanation",
    "explain_samples",
    "jl_feature_attribution",
    "model_report",
]
