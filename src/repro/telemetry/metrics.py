"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the *aggregated* view of a run (the event stream is the
raw view): the executor, checkpoint journal, retry policy, engine,
ensemble, and JL pre-projection all emit into it. Aggregation is
deterministic by construction —

- histogram bucket edges are **fixed at registration** (no dynamic
  rebinning), so histograms from different runs, shards, or machines
  align bucket-for-bucket and can be merged by plain addition;
- :meth:`MetricsRegistry.snapshot` emits metrics in sorted-name order,
  so two snapshots of identical runs are byte-identical JSON.

Counter/gauge *values* driven by timing (e.g. histogram observations of
task durations) are of course machine-dependent; the deterministic part
is the structure — names, buckets, and every count driven by the
deterministic event fields.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.utils.exceptions import ReproError

#: Default histogram edges for second-valued durations. Fixed and shared
#: so per-feature timing histograms aggregate across runs and shards.
DURATION_BUCKETS_S = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0)


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: int = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ReproError(f"counters only increase; got inc({n})")
        self.value += n


@dataclass
class Gauge:
    """A last-write-wins scalar (plus a running max, for peaks)."""

    value: float = 0.0
    max_value: float = float("-inf")
    n_sets: int = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.max_value = max(self.max_value, self.value)
        self.n_sets += 1


@dataclass
class Histogram:
    """Fixed-bucket histogram of non-negative observations.

    ``edges`` are the inclusive upper bounds of the finite buckets; one
    implicit overflow bucket catches everything beyond the last edge.
    Edges are frozen at construction so histograms are mergeable.
    """

    edges: tuple = DURATION_BUCKETS_S
    counts: list = field(default_factory=list)
    total: float = 0.0
    n: int = 0

    def __post_init__(self) -> None:
        self.edges = tuple(float(e) for e in self.edges)
        if list(self.edges) != sorted(set(self.edges)):
            raise ReproError(f"histogram edges must be strictly increasing; got {self.edges}")
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.edges, float(value))] += 1
        self.total += float(value)
        self.n += 1

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0


class MetricsRegistry:
    """Create-on-first-use registry of named metrics.

    Names are dotted strings (``"executor.tasks_ok"``); a name is bound
    to one metric kind for the registry's lifetime — re-registering the
    same name with a different kind (or different histogram edges) is an
    error, never a silent reset.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_unbound(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other, table in owners.items():
            if other != kind and name in table:
                raise ReproError(f"metric {name!r} is already a {other}")

    def counter(self, name: str) -> Counter:
        self._check_unbound(name, "counter")
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        self._check_unbound(name, "gauge")
        return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str, edges: tuple = DURATION_BUCKETS_S) -> Histogram:
        self._check_unbound(name, "histogram")
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(edges=tuple(edges))
        elif hist.edges != tuple(float(e) for e in edges):
            raise ReproError(
                f"histogram {name!r} already registered with edges {hist.edges}"
            )
        return hist

    def snapshot(self) -> dict:
        """Deterministically ordered, JSON-safe dump of every metric."""
        return {
            "counters": {k: self._counters[k].value for k in sorted(self._counters)},
            "gauges": {
                k: {
                    "value": self._gauges[k].value,
                    "max": (
                        self._gauges[k].max_value
                        if self._gauges[k].n_sets
                        else 0.0
                    ),
                }
                for k in sorted(self._gauges)
            },
            "histograms": {
                k: {
                    "edges": list(self._histograms[k].edges),
                    "counts": list(self._histograms[k].counts),
                    "total": self._histograms[k].total,
                    "n": self._histograms[k].n,
                }
                for k in sorted(self._histograms)
            },
        }

    # -- event-driven updates ---------------------------------------------
    def record_event(self, event) -> None:
        """Central event -> metric mapping, applied by the bus on emit.

        Keeping the mapping in one place means call sites emit an event
        once and the aggregated counters stay consistent with the raw
        stream by construction.
        """
        name = event.name
        if name == "FeatureTaskFinished":
            self.counter(f"executor.tasks_{event.status}").inc()
            if event.status == "skipped" and event.kind:
                self.counter(f"executor.skipped_{event.kind}").inc()
            if event.duration_s is not None:
                self.histogram("executor.task_duration_s").observe(event.duration_s)
        elif name == "FeatureTaskStarted":
            self.counter("executor.attempts").inc()
        elif name == "RetryScheduled":
            self.counter("executor.retries").inc()
        elif name == "TaskTimedOut":
            self.counter("executor.timeouts").inc()
        elif name == "WorkerCrashDetected":
            self.counter("executor.worker_crashes").inc()
        elif name == "CheckpointHit":
            self.counter("checkpoint.hits").inc()
        elif name == "CheckpointMiss":
            self.counter("checkpoint.misses").inc()
        elif name == "FoldTrained":
            self.counter("engine.folds_trained").inc()
        elif name == "ScoreComputed":
            self.counter("engine.scores_computed").inc()
        elif name == "RunStarted":
            self.counter("runs.started").inc()
        elif name == "RunFinished":
            self.counter(f"runs.finished_{event.status}").inc()
        elif name == "SpanFinished":
            self.counter(f"spans.{event.span}").inc()
            self.histogram("spans.wall_s").observe(event.wall_s)
