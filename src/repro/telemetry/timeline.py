"""Timeline reconstruction: who did what, when, and what bounded the run.

fracscope's recording half (bus, sinks, trace files) answers *what
happened*; this module answers *why the run took as long as it did*. It
rebuilds a per-slot execution timeline from the ``FeatureTaskStarted`` /
``FeatureTaskFinished`` pairs and the span tree in one
``repro-trace-v1`` file and derives:

- **virtual worker slots** — tasks packed first-fit onto lanes by their
  observed dispatch/finish wall-clock stamps. Slots are a deterministic
  *reconstruction* of concurrency, not OS worker identities (the trace
  deliberately records no worker ids; process pools recycle), but the
  lane count lower-bounds the worker count that produced the trace and
  per-lane busy time exposes load imbalance;
- **utilization** — busy time over makespan, per lane and overall;
- **queue-wait vs execute** — a task's dispatch→finish interval minus
  its scheduler-observed execute time (``duration_s``) is time spent
  queued behind a saturated pool or waiting on retries;
- **straggler ranking** — tasks whose execute time dwarfs the
  nearest-rank median (the classic long-tail that caps speedup);
- **parallelism profile** — a boundary-event sweep giving the time
  spent at each concurrency level;
- **critical path** — top-level spans run sequentially, so the run's
  lower bound is the sum over phases of the phase's unavoidable time:
  the longest single task for a task-parallel phase (the task DAG is
  embarrassingly parallel — no task depends on another, so the longest
  chain is the longest task), the span's own wall otherwise.

Everything here is a pure function of the record list: same JSONL in,
byte-identical report out (the fracscope determinism contract — no
clocks, no randomness, no dict-order dependence).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.trace import (
    TraceReadResult,
    nearest_rank_percentile,
    read_trace,
)

#: A task is a straggler when its execute time reaches this multiple of
#: the population's nearest-rank median.
STRAGGLER_FACTOR = 3.0

#: Maximum rows rendered for lanes and stragglers (full data stays on
#: the dataclasses; rendering truncates deterministically).
MAX_RENDER_ROWS = 10


@dataclass
class TaskInterval:
    """One task's observed life on the wall clock."""

    index: int
    key: object
    start_t: float
    end_t: float
    status: str = "ok"
    attempts: int = 1
    #: Scheduler-observed execute wall of the final attempt; ``None``
    #: where the execution mode cannot attribute per-item time.
    duration_s: "float | None" = None
    #: Virtual lane assigned by first-fit packing (filled by build).
    slot: int = -1

    @property
    def span_s(self) -> float:
        """Dispatch-to-finish interval on the parent's wall clock."""
        return self.end_t - self.start_t

    @property
    def queue_wait_s(self) -> "float | None":
        """Interval time not spent executing (None without duration)."""
        if self.duration_s is None:
            return None
        return max(0.0, self.span_s - self.duration_s)


@dataclass
class SlotLane:
    """One virtual worker lane of the reconstructed timeline."""

    slot: int
    n_tasks: int = 0
    busy_s: float = 0.0


@dataclass
class PhaseSegment:
    """One sequential top-level phase on the critical path."""

    name: str
    wall_s: float
    #: Unavoidable serial time: the longest single task for a
    #: task-parallel phase, else the phase wall itself.
    critical_s: float
    n_tasks: int = 0  # task intervals overlapping this phase


@dataclass
class Timeline:
    """The full derived timeline for one trace."""

    intervals: list = field(default_factory=list)  # TaskInterval, packed order
    lanes: list = field(default_factory=list)  # SlotLane by slot
    t0: "float | None" = None
    t1: "float | None" = None
    #: Tasks that finished without a matching start (checkpoint replay
    #: emits only FeatureTaskFinished) — counted, not packed.
    n_instant: int = 0
    parallelism: list = field(default_factory=list)  # (concurrency, seconds)
    stragglers: list = field(default_factory=list)  # TaskInterval, ranked
    median_duration_s: "float | None" = None
    segments: list = field(default_factory=list)  # PhaseSegment, trace order
    observed_wall_s: float = 0.0  # sum of top-level span walls

    @property
    def makespan_s(self) -> float:
        if self.t0 is None or self.t1 is None:
            return 0.0
        return self.t1 - self.t0

    @property
    def n_slots(self) -> int:
        return len(self.lanes)

    @property
    def utilization(self) -> float:
        """Busy time over lane-seconds of makespan (0 when degenerate)."""
        denom = self.n_slots * self.makespan_s
        if denom <= 0.0:
            return 0.0
        return sum(lane.busy_s for lane in self.lanes) / denom

    @property
    def critical_path_s(self) -> float:
        return sum(seg.critical_s for seg in self.segments)


def _pair_task_intervals(records: list) -> "tuple[list, int]":
    """Match Started/Finished records into intervals, in finish order.

    A start is matched FIFO per task index (retries re-dispatch the same
    index; the interval spans first dispatch to terminal finish, which
    is exactly the queue+retry+execute life of the item). Finishes with
    no start on file (checkpoint replay, torn head) become zero-length
    markers counted separately.
    """
    pending: dict[int, list] = {}
    intervals: list[TaskInterval] = []
    n_instant = 0
    for rec in records:
        event = rec.get("event")
        if event == "FeatureTaskStarted":
            index = rec.get("index", -1)
            # Only the first dispatch opens the interval; retry
            # dispatches of the same in-flight index extend nothing.
            pending.setdefault(index, []).append(rec.get("t", 0.0))
        elif event == "FeatureTaskFinished":
            index = rec.get("index", -1)
            starts = pending.get(index)
            end_t = rec.get("t", 0.0)
            if starts:
                start_t = starts.pop(0)
                if not starts:
                    del pending[index]
            else:
                start_t = end_t
                n_instant += 1
            intervals.append(
                TaskInterval(
                    index=index,
                    key=rec.get("key"),
                    start_t=start_t,
                    end_t=end_t,
                    status=rec.get("status", "ok"),
                    attempts=rec.get("attempts", 1),
                    duration_s=rec.get("duration_s"),
                )
            )
    return intervals, n_instant


def _pack_slots(intervals: list) -> list:
    """First-fit interval packing onto virtual lanes.

    Deterministic: process intervals by (start, end, index); an interval
    takes the lowest-numbered lane free at its start (lane free time is
    the last occupant's end), else opens a new lane. The lane count is a
    lower bound on the true concurrency that produced the trace.
    """
    lane_free: list[float] = []
    lanes: list[SlotLane] = []
    for interval in sorted(intervals, key=lambda iv: (iv.start_t, iv.end_t, iv.index)):
        slot = next(
            (s for s, free_at in enumerate(lane_free) if free_at <= interval.start_t),
            None,
        )
        if slot is None:
            slot = len(lane_free)
            lane_free.append(0.0)
            lanes.append(SlotLane(slot=slot))
        interval.slot = slot
        lane_free[slot] = interval.end_t
        lanes[slot].n_tasks += 1
        lanes[slot].busy_s += interval.span_s
    return lanes


def _parallelism_profile(intervals: list) -> list:
    """Time spent at each concurrency level, by boundary-event sweep.

    At a shared boundary the finish is processed before the start
    (delta -1 sorts first), so back-to-back tasks on one lane never
    register as concurrency 2.
    """
    boundaries: list[tuple] = []
    for interval in intervals:
        if interval.span_s <= 0.0:
            continue
        boundaries.append((interval.start_t, 1))
        boundaries.append((interval.end_t, -1))
    if not boundaries:
        return []
    boundaries.sort(key=lambda b: (b[0], b[1]))
    at_level: dict[int, float] = {}
    level = 0
    prev_t = boundaries[0][0]
    for t, delta in boundaries:
        if t > prev_t and level > 0:
            at_level[level] = at_level.get(level, 0.0) + (t - prev_t)
        level += delta
        prev_t = t
    return sorted(at_level.items())


def _rank_stragglers(intervals: list) -> "tuple[list, float | None]":
    """Tasks whose execute time reaches STRAGGLER_FACTOR x the median."""
    durations = [iv.duration_s for iv in intervals if iv.duration_s is not None]
    if not durations:
        return [], None
    median = nearest_rank_percentile(durations, 50)
    threshold = STRAGGLER_FACTOR * median
    flagged = [
        iv
        for iv in intervals
        if iv.duration_s is not None and iv.duration_s > 0.0 and iv.duration_s >= threshold
    ]
    flagged.sort(key=lambda iv: (-iv.duration_s, iv.index))
    return flagged, median


def _critical_segments(records: list, intervals: list) -> "tuple[list, float]":
    """Top-level phase segments and the observed sequential wall.

    Rebuilds the span tree with a depth stack (tolerating torn pairs the
    same way the trace reader tolerates a torn tail) and keeps depth-0
    spans, which the engine runs strictly in sequence. For each, the
    critical contribution is the longest single task interval that
    overlaps its window when any do (the task DAG has no inter-task
    edges, so the longest chain is the longest task), else its own wall.
    """
    stack: list[tuple] = []  # (span name, start t, depth)
    segments: list[PhaseSegment] = []
    observed = 0.0
    for rec in records:
        event = rec.get("event")
        if event == "SpanStarted":
            stack.append((rec.get("span", "?"), rec.get("t", 0.0), rec.get("depth", 0)))
        elif event == "SpanFinished":
            name = rec.get("span", "?")
            depth = rec.get("depth", 0)
            while stack and (stack[-1][0] != name or stack[-1][2] != depth):
                stack.pop()  # torn inner pair: discard unmatched opens
            if not stack:
                continue
            _, start_t, _ = stack.pop()
            if depth != 0:
                continue
            end_t = rec.get("t", start_t)
            wall = rec.get("wall_s", end_t - start_t)
            overlapping = [
                iv
                for iv in intervals
                if iv.end_t > start_t and iv.start_t < end_t and iv.span_s > 0.0
            ]
            if overlapping:
                critical = max(iv.span_s for iv in overlapping)
            else:
                critical = wall
            segments.append(
                PhaseSegment(
                    name=name,
                    wall_s=wall,
                    critical_s=critical,
                    n_tasks=len(overlapping),
                )
            )
            observed += wall
    return segments, observed


def build_timeline(source: "TraceReadResult | list | str") -> Timeline:
    """Derive the full timeline from a trace (result, records, or path)."""
    if isinstance(source, TraceReadResult):
        records = source.records
    elif isinstance(source, list):
        records = source
    else:
        records = read_trace(source).records

    timeline = Timeline()
    intervals, timeline.n_instant = _pair_task_intervals(records)
    timeline.intervals = intervals
    packable = [iv for iv in intervals if iv.span_s > 0.0]
    timeline.lanes = _pack_slots(packable)
    if packable:
        timeline.t0 = min(iv.start_t for iv in packable)
        timeline.t1 = max(iv.end_t for iv in packable)
    timeline.parallelism = _parallelism_profile(intervals)
    timeline.stragglers, timeline.median_duration_s = _rank_stragglers(intervals)
    timeline.segments, timeline.observed_wall_s = _critical_segments(records, intervals)
    return timeline


def _fmt_key(interval: TaskInterval) -> str:
    if interval.key is not None:
        return f"key={interval.key}"
    return f"index={interval.index}"


def render_timeline(timeline: Timeline) -> str:
    """Deterministic text rendering of a :class:`Timeline`."""
    lines: list[str] = []
    n_timed = len([iv for iv in timeline.intervals if iv.span_s > 0.0])
    lines.append(
        f"timeline: {len(timeline.intervals)} task(s)"
        f" ({timeline.n_instant} replayed without a start record)"
        f" over {timeline.n_slots} virtual slot(s),"
        f" makespan={timeline.makespan_s:.3f}s"
    )

    if timeline.lanes:
        lines.append("")
        lines.append("virtual slots (first-fit reconstruction, not OS workers)")
        makespan = timeline.makespan_s
        for lane in timeline.lanes[:MAX_RENDER_ROWS]:
            share = 100.0 * lane.busy_s / makespan if makespan > 0.0 else 0.0
            lines.append(
                f"  slot {lane.slot}: {lane.n_tasks} task(s),"
                f" busy={lane.busy_s:.3f}s ({share:.1f}% of makespan)"
            )
        if len(timeline.lanes) > MAX_RENDER_ROWS:
            lines.append(f"  ... {len(timeline.lanes) - MAX_RENDER_ROWS} more slot(s)")
        lines.append(f"  overall utilization: {100.0 * timeline.utilization:.1f}%")

    if timeline.parallelism:
        lines.append("")
        lines.append("parallelism profile (time at each concurrency level)")
        for level, seconds in timeline.parallelism:
            lines.append(f"  {level} in flight: {seconds:.3f}s")

    waits = [iv.queue_wait_s for iv in timeline.intervals if iv.queue_wait_s is not None]
    if waits:
        executes = [iv.duration_s for iv in timeline.intervals if iv.duration_s is not None]
        lines.append("")
        lines.append(
            f"queue-wait vs execute ({len(waits)} scheduler-timed task(s))"
        )
        lines.append(f"  total execute: {sum(executes):.3f}s")
        lines.append(f"  total queue-wait: {sum(waits):.3f}s")

    if timeline.median_duration_s is not None:
        lines.append("")
        lines.append(
            f"stragglers (>= {STRAGGLER_FACTOR:.1f}x median execute"
            f" {timeline.median_duration_s:.3f}s): {len(timeline.stragglers)}"
        )
        for iv in timeline.stragglers[:MAX_RENDER_ROWS]:
            lines.append(
                f"  {_fmt_key(iv)}: {iv.duration_s:.3f}s ({iv.attempts} attempt(s))"
            )
        if len(timeline.stragglers) > MAX_RENDER_ROWS:
            lines.append(
                f"  ... {len(timeline.stragglers) - MAX_RENDER_ROWS} more straggler(s)"
            )

    if timeline.segments:
        lines.append("")
        lines.append("critical path (sequential top-level phases)")
        width = max(len(seg.name) for seg in timeline.segments)
        for seg in timeline.segments:
            row = f"  {seg.name.ljust(width)}  wall={seg.wall_s:.3f}s"
            if seg.n_tasks:
                row += (
                    f"  critical={seg.critical_s:.3f}s"
                    f" (longest of {seg.n_tasks} parallel task(s))"
                )
            lines.append(row)
        lines.append(
            f"  critical path total: {timeline.critical_path_s:.3f}s"
            f" vs observed wall {timeline.observed_wall_s:.3f}s"
        )
        if timeline.critical_path_s > 0.0:
            headroom = timeline.observed_wall_s / timeline.critical_path_s
            lines.append(
                f"  max theoretical speedup at infinite workers: {headroom:.2f}x"
            )

    if n_timed == 0 and not timeline.segments:
        lines.append("")
        lines.append("no task intervals or spans on file — nothing to reconstruct")
    return "\n".join(lines)
