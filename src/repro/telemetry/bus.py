"""The event bus: one emit path, pluggable sinks, aggregated metrics.

A bus stamps every event with a monotonically increasing sequence number
and a wall timestamp (read through the profiling layer — FRL007), fans
the record out to its sinks, and applies the central event->metric
mapping to its :class:`~repro.telemetry.metrics.MetricsRegistry`.

Emission is serialized under a lock: the engine's thread mode trains
feature models concurrently and their ``FoldTrained`` events interleave
arbitrarily, but each record is stamped and delivered atomically.

Telemetry is an observation channel, never a computation input — a bus
carries no RNG, reads no results, and the library behaves identically
(bit-for-bit) with or without one installed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable

from repro.parallel import profiling
from repro.telemetry.events import TelemetryEvent
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sinks import Sink


@dataclass(frozen=True)
class TraceRecord:
    """One stamped event: what the sinks receive."""

    seq: int
    t_wall: float
    event: TelemetryEvent

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "t": self.t_wall,
            "event": self.event.name,
            **self.event.to_dict(),
        }


class EventBus:
    """Delivers telemetry events to sinks and the metrics registry."""

    def __init__(
        self,
        sinks: "Iterable[Sink] | None" = None,
        *,
        metrics: "MetricsRegistry | None" = None,
        trace_path: "str | None" = None,
    ) -> None:
        self.sinks: list[Sink] = list(sinks or [])
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Path of the JSONL trace this bus writes, if any (recorded into
        #: persisted-artifact metadata so a pickle points at its trace).
        self.trace_path = trace_path
        self.counts: dict[str, int] = {}
        self._seq = 0
        self._lock = threading.Lock()
        self._closed = False

    def add_sink(self, sink: Sink) -> Sink:
        with self._lock:
            self.sinks.append(sink)
        return sink

    def emit(self, event: TelemetryEvent) -> None:
        """Stamp one event and deliver it to every sink, atomically."""
        with self._lock:
            if self._closed:
                return
            record = TraceRecord(
                seq=self._seq, t_wall=profiling.wall_seconds(), event=event
            )
            self._seq += 1
            self.counts[event.name] = self.counts.get(event.name, 0) + 1
            self.metrics.record_event(event)
            for sink in self.sinks:
                sink.handle(record)

    @property
    def n_emitted(self) -> int:
        with self._lock:
            return self._seq

    def trace_metadata(self) -> dict:
        """Summary embedded alongside persisted artifacts: where the
        trace lives, what it contains, and the aggregated metrics."""
        with self._lock:
            return {
                "trace_path": self.trace_path,
                "n_events": self._seq,
                "event_counts": dict(sorted(self.counts.items())),
                "metrics": self.metrics.snapshot(),
            }

    def close(self) -> None:
        """Close every sink; further emits become no-ops.

        Sinks are snapshotted under the lock but closed outside it: a
        sink whose ``close()`` re-enters the bus (flushing a final
        summary through ``emit``, reading ``n_emitted``) would deadlock
        on the non-reentrant ``threading.Lock`` if teardown happened
        inside the critical section. ``_closed`` is set first, so any
        re-entrant emit during teardown is a defined no-op.
        """
        with self._lock:
            self._closed = True
            sinks = list(self.sinks)
        for sink in sinks:
            sink.close()
