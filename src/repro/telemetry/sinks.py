"""Event sinks: where the bus delivers its records.

Three sinks cover the needs of a feature-scale run:

- :class:`JsonlTraceSink` — the durable trace: one JSON object per
  line, flushed per record so a killed run loses at most the final,
  half-written line. Opening an existing file in append mode replays
  it and truncates that torn tail first — the same crash model as the
  checkpoint journal (``repro.parallel.checkpoint``).
- :class:`MemorySink` — in-process collection for tests; exposes the
  determinism :meth:`~MemorySink.signatures` multiset.
- :class:`ProgressSink` — a throttled single-line stderr progress
  display for interactive runs (``--progress``). This module and
  ``repro.cli`` are the only places in the library allowed to write to
  stderr/stdout directly (fraclint rule FRL009).

Sinks receive :class:`~repro.telemetry.bus.TraceRecord` objects under
the bus's lock, so they need no locking of their own.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any

from repro.parallel import profiling
from repro.utils.exceptions import ReproError

#: File format tag written as the first line of every trace file.
TRACE_FORMAT = "repro-trace-v1"


class TelemetrySinkError(ReproError):
    """Raised when a sink cannot record an event durably."""


class Sink:
    """Sink interface: receive records, release resources on close."""

    def handle(self, record) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Idempotent resource release; default: nothing to release."""


class MemorySink(Sink):
    """Collects records in memory; the test suite's observation point."""

    def __init__(self) -> None:
        self.records: list = []

    def handle(self, record) -> None:
        self.records.append(record)

    def events(self) -> list:
        return [r.event for r in self.records]

    def names(self) -> list:
        return [r.event.name for r in self.records]

    def signatures(self) -> dict:
        """Multiset (signature -> count) over the deterministic fields."""
        out: dict[tuple, int] = {}
        for record in self.records:
            sig = record.event.signature()
            out[sig] = out.get(sig, 0) + 1
        return out


class JsonlTraceSink(Sink):
    """Durable JSONL trace file.

    Each record is one line: ``{"seq": ..., "t": ..., "event": ...,
    <payload>}`` with sorted keys. The first line is a header object
    carrying the format tag, so readers can reject non-trace files
    before parsing megabytes of JSON.
    """

    def __init__(self, path: "str | Path", *, append: bool = False) -> None:
        self.path = Path(path)
        self.n_written = 0
        if append and self.path.exists():
            valid = self._valid_byte_length()
            self._fh = self.path.open("r+", encoding="utf-8")
            self._fh.truncate(valid)
            self._fh.seek(valid)
            if valid == 0:
                self._write_header()
        else:
            self._fh = self.path.open("w", encoding="utf-8")
            self._write_header()

    def _write_header(self) -> None:
        self._fh.write(json.dumps({"format": TRACE_FORMAT}, sort_keys=True) + "\n")
        self._fh.flush()

    def _valid_byte_length(self) -> int:
        """Byte length of the intact-line prefix of an existing file.

        A kill mid-write leaves at most one torn final line (no newline,
        or truncated JSON); everything before it is kept — mirroring the
        checkpoint journal's truncate-on-open recovery.
        """
        valid = 0
        with self.path.open("rb") as fh:
            for line in fh:
                if not line.endswith(b"\n"):
                    break
                try:
                    json.loads(line)
                except ValueError:
                    break
                valid += len(line)
        return valid

    def handle(self, record) -> None:
        if self._fh is None:
            raise TelemetrySinkError(f"trace sink {self.path} is closed")
        try:
            self._fh.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
            self._fh.flush()
        except (OSError, TypeError, ValueError) as exc:
            raise TelemetrySinkError(
                f"cannot append event {record.event.name!r} to {self.path}: {exc}"
            ) from exc
        self.n_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ProgressSink(Sink):
    """Throttled one-line progress display on stderr.

    Repaints at most every ``min_interval_s`` seconds of wall time
    (observed through the profiling layer, keeping FRL007's clock
    containment), plus unconditionally on run start/finish so short
    runs still show something.
    """

    def __init__(
        self,
        stream: Any = None,
        *,
        min_interval_s: float = 0.5,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = float(min_interval_s)
        self._last_paint = float("-inf")
        self._total = 0
        self._done = 0
        self._retries = 0
        self._failed = 0
        self._cached = 0
        self._kind = ""
        self._open_line = False

    def handle(self, record) -> None:
        event = record.event
        name = event.name
        if name == "RunStarted":
            self._total = event.n_tasks
            self._done = self._retries = self._failed = self._cached = 0
            self._kind = event.kind
            self._paint(force=True)
        elif name == "FeatureTaskFinished":
            self._done += 1
            if event.status == "skipped":
                self._failed += 1
            elif event.status == "cached":
                self._cached += 1
            self._paint()
        elif name == "RetryScheduled":
            self._retries += 1
            self._paint()
        elif name == "RunFinished":
            self._paint(force=True)
            self._end_line()

    def _paint(self, force: bool = False) -> None:
        now = profiling.wall_seconds()
        if not force and now - self._last_paint < self.min_interval_s:
            return
        self._last_paint = now
        total = str(self._total) if self._total else "?"
        line = (
            f"[{self._kind or 'run'}] {self._done}/{total} tasks"
            f" | cached {self._cached} | retries {self._retries}"
            f" | failed {self._failed}"
        )
        self.stream.write("\r" + line.ljust(72))
        self.stream.flush()
        self._open_line = True

    def _end_line(self) -> None:
        if self._open_line:
            self.stream.write("\n")
            self.stream.flush()
            self._open_line = False

    def close(self) -> None:
        self._end_line()
