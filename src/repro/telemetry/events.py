"""Typed telemetry events: the vocabulary of a FRaC run.

Every observable moment of a run — batch start, per-feature task
lifecycle, retries, timeouts, crashes, checkpoint reuse, fold training,
scoring — is one frozen dataclass here. Events are *observations*: they
carry facts about what happened and never feed back into computed
results (the FRL007 containment extended to telemetry as a whole; see
docs/observability.md).

Two kinds of fields coexist deliberately:

- **deterministic** fields (indices, keys, attempt numbers, statuses,
  configured backoffs/timeouts) — identical across identical seeded
  runs; the determinism suite compares event multisets over these;
- **timing** fields (durations, CPU, RSS) — machine-dependent by
  nature, listed in :data:`TIMING_FIELDS` so comparisons can exclude
  them and the trace summarizer knows what to aggregate.

Events serialize via :meth:`TelemetryEvent.to_dict` into JSON-safe
primitives (tuple keys become lists), which is what the JSONL trace sink
writes and ``python -m repro trace`` reads back.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar

#: Machine-dependent fields excluded from determinism comparisons
#: (:meth:`TelemetryEvent.signature`) and from golden-output fixtures.
TIMING_FIELDS = frozenset({"duration_s", "wall_s", "cpu_s", "rss_peak_bytes"})


def _json_safe(value: Any) -> Any:
    """Coerce payload values into JSON-representable primitives."""
    if isinstance(value, (tuple, list)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return value


#: Per-class field-name cache: ``dataclasses.fields`` walks the MRO on
#: every call, and the trace sink serializes tens of thousands of events
#: per run. Field sets are fixed at class-creation time, so one lookup
#: per class suffices.
_FIELD_NAMES: dict[type, tuple] = {}


@dataclass(frozen=True)
class TelemetryEvent:
    """Base class: one observed fact about a run."""

    #: Stable event name used in trace files and the registry.
    name: ClassVar[str] = ""

    def to_dict(self) -> dict:
        """JSON-safe payload (event name excluded; the record adds it)."""
        names = _FIELD_NAMES.get(type(self))
        if names is None:
            names = tuple(f.name for f in fields(self))
            _FIELD_NAMES[type(self)] = names
        return {n: _json_safe(getattr(self, n)) for n in names}

    def signature(self) -> tuple:
        """Hashable determinism signature: name + non-timing payload.

        Two identical seeded runs must produce equal signature
        *multisets* whatever the wall clock did.
        """
        payload = tuple(
            (k, _freeze(v))
            for k, v in sorted(self.to_dict().items())
            if k not in TIMING_FIELDS
        )
        return (self.name,) + payload


def _freeze(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


EVENT_TYPES: dict[str, type] = {}


def _register(cls: type) -> type:
    if not cls.name or cls.name in EVENT_TYPES:
        raise ValueError(f"event class {cls.__name__} needs a unique name")
    EVENT_TYPES[cls.name] = cls
    return cls


# -- run lifecycle -----------------------------------------------------------


@_register
@dataclass(frozen=True)
class RunStarted(TelemetryEvent):
    """A batch run (fit, study, CLI command) began."""

    name: ClassVar[str] = "RunStarted"
    kind: str = ""
    n_tasks: int = 0
    n_samples: int = 0
    mode: str = "serial"
    n_workers: int = 1
    meta: "dict | None" = None


@_register
@dataclass(frozen=True)
class RunFinished(TelemetryEvent):
    """Terminal event: how a run ended, with its full failure report.

    ``failure_report`` is the :class:`repro.parallel.faults.FailureReport`
    round-trip dict, so a trace file alone reconstructs what failed and
    why — no pickle artifact needed.
    """

    name: ClassVar[str] = "RunFinished"
    kind: str = ""
    status: str = "ok"  # "ok" | "error"
    n_models: int = 0
    n_skipped: int = 0
    n_failed: int = 0
    failure_report: "dict | None" = None
    metrics: "dict | None" = None


# -- per-feature task lifecycle ----------------------------------------------


@_register
@dataclass(frozen=True)
class FeatureTaskStarted(TelemetryEvent):
    """One attempt at one (feature, slot) work item was dispatched."""

    name: ClassVar[str] = "FeatureTaskStarted"
    index: int = 0
    attempt: int = 0  # 0-based: the first execution is attempt 0
    key: Any = None


@_register
@dataclass(frozen=True)
class FeatureTaskFinished(TelemetryEvent):
    """A work item reached a terminal state.

    ``status``: ``"ok"`` (executed), ``"cached"`` (replayed from the
    checkpoint journal), or ``"skipped"`` (retries exhausted; ``kind``
    holds the failure class). ``duration_s`` is the scheduler-observed
    wall time of the final attempt, ``None`` where the execution mode
    cannot attribute per-item time (process-mode chunked map).
    """

    name: ClassVar[str] = "FeatureTaskFinished"
    index: int = 0
    status: str = "ok"  # "ok" | "cached" | "skipped"
    attempts: int = 1
    key: Any = None
    kind: "str | None" = None  # failure kind when skipped
    duration_s: "float | None" = None


@_register
@dataclass(frozen=True)
class RetryScheduled(TelemetryEvent):
    """An item failed an attempt and was requeued."""

    name: ClassVar[str] = "RetryScheduled"
    index: int = 0
    attempt: int = 0  # attempts consumed so far (== next attempt number)
    kind: str = "exception"
    backoff_s: float = 0.0  # policy-derived, deterministic


@_register
@dataclass(frozen=True)
class TaskTimedOut(TelemetryEvent):
    """An attempt exceeded the per-task timeout; its pool was recycled."""

    name: ClassVar[str] = "TaskTimedOut"
    index: int = 0
    attempt: int = 0
    timeout_s: "float | None" = None


@_register
@dataclass(frozen=True)
class WorkerCrashDetected(TelemetryEvent):
    """A pool broke under a dying worker.

    ``index`` is the culprit item when attributable (isolation probe:
    exactly one item in flight) and ``None`` for a wide-wave break,
    where any in-flight item may be at fault (see the executor's
    crash-attribution docstrings).
    """

    name: ClassVar[str] = "WorkerCrashDetected"
    phase: str = "wave"  # "wave" | "submit" | "probe"
    index: "int | None" = None
    n_requeued: int = 0


# -- checkpoint reuse --------------------------------------------------------


@_register
@dataclass(frozen=True)
class CheckpointHit(TelemetryEvent):
    """An item's result was replayed from the journal (not re-executed)."""

    name: ClassVar[str] = "CheckpointHit"
    index: int = 0
    key: Any = None


@_register
@dataclass(frozen=True)
class CheckpointMiss(TelemetryEvent):
    """An item was absent from the journal and must execute."""

    name: ClassVar[str] = "CheckpointMiss"
    index: int = 0
    key: Any = None


# -- engine / scoring --------------------------------------------------------


@_register
@dataclass(frozen=True)
class FoldTrained(TelemetryEvent):
    """One CV fold of one feature model finished training.

    Emitted from inside the work function, so it is visible in serial
    and thread modes; process-mode workers run with telemetry disabled
    (their events cannot reach the parent's sinks) and the task-level
    lifecycle events cover them.
    """

    name: ClassVar[str] = "FoldTrained"
    feature_id: int = 0
    slot: int = 0
    fold: int = 0
    n_folds: int = 0


@_register
@dataclass(frozen=True)
class ScoreComputed(TelemetryEvent):
    """A batch of test samples was scored against the fitted models."""

    name: ClassVar[str] = "ScoreComputed"
    n_samples: int = 0
    n_models: int = 0


# -- spans -------------------------------------------------------------------


@_register
@dataclass(frozen=True)
class SpanStarted(TelemetryEvent):
    """A named phase opened (see :mod:`repro.telemetry.spans`).

    ``attrs`` carries deterministic phase parameters (a batch's size and
    plan-group key, a projection's dimension) — facts about the *work*,
    never timings, so they participate in determinism signatures.
    """

    name: ClassVar[str] = "SpanStarted"
    span: str = ""
    depth: int = 0
    attrs: "dict | None" = None


@_register
@dataclass(frozen=True)
class SpanFinished(TelemetryEvent):
    """A named phase closed, with its wall/CPU/RSS accounting."""

    name: ClassVar[str] = "SpanFinished"
    span: str = ""
    depth: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    rss_peak_bytes: int = 0
    attrs: "dict | None" = None
