"""OpenMetrics exposition: scrapeable metrics from a running fit.

Long feature-scale fits (and the future serving layer, ROADMAP Open
item 2) need standard observability plumbing: a Prometheus-compatible
scrape target, not a bespoke JSON dump. This module renders a
:class:`~repro.telemetry.metrics.MetricsRegistry` in the OpenMetrics
text exposition format — stdlib only, no client library — and provides
:class:`OpenMetricsSink`, a bus sink that keeps a snapshot *file*
up to date while the run is live:

- every record updates the sink's own registry (via the same central
  ``record_event`` mapping the bus uses, so the exposition agrees with
  the trace by construction);
- the file is rewritten at most every ``min_interval_s`` seconds of
  wall time (observed through the profiling layer — FRL007's clock
  containment), atomically via write-to-temp-then-replace so a scraper
  (``node_exporter``'s textfile collector, a sidecar, ``cat``) never
  reads a half-written exposition;
- ``close()`` writes through unconditionally, so the final state of a
  finished run is always on disk.

Attach with ``repro ... --openmetrics PATH`` or
``telemetry.configure(openmetrics_path=...)``. Like every sink, this is
observation-only: it changes no computed result (the integration suite
pins byte-identical NS scores with the sink attached vs telemetry off).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.parallel import profiling
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sinks import Sink, TelemetrySinkError

#: Default minimum wall-clock seconds between snapshot rewrites.
DEFAULT_SNAPSHOT_INTERVAL_S = 5.0


def metric_name(name: str) -> str:
    """Dotted registry name -> OpenMetrics metric name.

    ``executor.tasks_ok`` -> ``repro_executor_tasks_ok``. Every character
    outside ``[a-zA-Z0-9_]`` becomes ``_`` (span names may carry dots and
    brackets); the ``repro_`` prefix namespaces the exposition.
    """
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{safe}"


def _fmt(value: float) -> str:
    """Shortest exact decimal for a float; integers stay integral."""
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_openmetrics(registry: MetricsRegistry) -> str:
    """Render a registry as an OpenMetrics text exposition.

    Counters get the ``_total`` sample suffix, gauges expose their value
    plus a ``<name>_max`` companion (the registry tracks running peaks),
    histograms expose cumulative ``_bucket{le="..."}`` series with the
    ``+Inf`` overflow bucket, ``_sum``, and ``_count``. Families are
    emitted in sorted-name order and the exposition ends with ``# EOF``
    — same determinism contract as every fracscope rendering.
    """
    snap = registry.snapshot()
    lines: list[str] = []

    for name in sorted(snap["counters"]):
        om = metric_name(name)
        lines.append(f"# TYPE {om} counter")
        lines.append(f"{om}_total {_fmt(snap['counters'][name])}")

    for name in sorted(snap["gauges"]):
        om = metric_name(name)
        gauge = snap["gauges"][name]
        lines.append(f"# TYPE {om} gauge")
        lines.append(f"{om} {_fmt(gauge['value'])}")
        lines.append(f"# TYPE {om}_max gauge")
        lines.append(f"{om}_max {_fmt(gauge['max'])}")

    for name in sorted(snap["histograms"]):
        om = metric_name(name)
        hist = snap["histograms"][name]
        lines.append(f"# TYPE {om} histogram")
        cumulative = 0
        for edge, count in zip(hist["edges"], hist["counts"]):
            cumulative += count
            lines.append(f'{om}_bucket{{le="{_fmt(edge)}"}} {cumulative}')
        cumulative += hist["counts"][-1]
        lines.append(f'{om}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{om}_sum {_fmt(hist['total'])}")
        lines.append(f"{om}_count {hist['n']}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class OpenMetricsSink(Sink):
    """Keeps an OpenMetrics snapshot file current while a run is live."""

    def __init__(
        self,
        path: "str | Path",
        *,
        min_interval_s: float = DEFAULT_SNAPSHOT_INTERVAL_S,
    ) -> None:
        self.path = Path(path)
        self.min_interval_s = float(min_interval_s)
        self.registry = MetricsRegistry()
        self.n_snapshots = 0
        self._last_write = float("-inf")
        self._closed = False
        # Fail fast on an unwritable target, and give scrapers an empty
        # (but valid) exposition from the first moment of the run.
        self._write_snapshot()

    def handle(self, record) -> None:
        if self._closed:
            raise TelemetrySinkError(f"openmetrics sink {self.path} is closed")
        self.registry.record_event(record.event)
        now = profiling.wall_seconds()
        if now - self._last_write >= self.min_interval_s:
            self._write_snapshot()

    def _write_snapshot(self) -> None:
        text = render_openmetrics(self.registry)
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError as exc:
            raise TelemetrySinkError(
                f"cannot write OpenMetrics snapshot to {self.path}: {exc}"
            ) from exc
        self._last_write = profiling.wall_seconds()
        self.n_snapshots += 1

    def close(self) -> None:
        """Final write-through: the terminal scrape is always on disk."""
        if not self._closed:
            self._write_snapshot()
            self._closed = True
