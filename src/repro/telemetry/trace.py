"""Trace files: reading, summarizing, rendering.

The read side of the JSONL trace sink. ``read_trace`` replays a trace
tolerantly — a run killed mid-write leaves at most one torn final line,
which is dropped and counted, mirroring the checkpoint journal's
recovery model — and ``summarize_trace`` folds the event stream into
the run-level facts an operator asks of a feature-scale batch:

- per-phase wall/CPU breakdown (from spans);
- the slowest features (scheduler-observed task durations);
- the retry / timeout / crash / skip accounting, cross-checked against
  the failure report embedded in the terminal ``RunFinished`` event;
- checkpoint reuse rate.

``python -m repro trace run.jsonl`` renders the summary as text.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.sinks import TRACE_FORMAT
from repro.utils.exceptions import ReproError

#: Failure kinds a skipped task may carry, in report order.
FAILURE_KINDS = ("exception", "timeout", "crash")


class TraceError(ReproError):
    """Raised when a file is not a readable trace."""


def nearest_rank_percentile(values: "list[float]", p: float) -> float:
    """Nearest-rank percentile: the ceil(p/100 * n)-th smallest value.

    No interpolation — the result is always an observed member of
    ``values``, so two summaries of the same trace are byte-identical
    however the platform rounds (the determinism contract of every
    fracscope analysis). ``values`` must be non-empty.
    """
    if not values:
        raise ValueError("percentile of an empty population")
    ordered = sorted(values)
    rank = max(1, -(-int(p) * len(ordered) // 100))  # ceil without floats
    return ordered[min(rank, len(ordered)) - 1]


#: Percentile points reported for every span population.
PERCENTILE_POINTS = (50, 95, 99)


@dataclass
class TraceReadResult:
    """Outcome of replaying one trace file."""

    path: str
    records: list = field(default_factory=list)
    n_torn: int = 0  # torn trailing lines dropped (kill mid-write)
    errors: list = field(default_factory=list)  # undecodable non-tail lines


def read_trace(path: "str | Path") -> TraceReadResult:
    """Replay a JSONL trace; tolerate (and count) a torn final line."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no such trace file: {path}")
    raw = path.read_bytes()
    lines = raw.split(b"\n")
    # A file ending in "\n" splits into [..., b""]; a torn tail does not.
    torn_tail = lines and lines[-1] != b""
    if lines and lines[-1] == b"":
        lines = lines[:-1]

    result = TraceReadResult(path=str(path))
    if not lines:
        raise TraceError(f"{path} is empty; not a {TRACE_FORMAT} trace")
    try:
        header = json.loads(lines[0])
    except ValueError:
        raise TraceError(f"{path} is not a {TRACE_FORMAT} trace (bad header)") from None
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise TraceError(
            f"{path} is not a {TRACE_FORMAT} trace "
            f"(header format: {header.get('format')!r})"
            if isinstance(header, dict)
            else f"{path} is not a {TRACE_FORMAT} trace"
        )

    last = len(lines) - 1
    for i, line in enumerate(lines[1:], start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if i == last and torn_tail:
                result.n_torn += 1
            else:
                result.errors.append(f"line {i + 1}: undecodable JSON")
            continue
        if not isinstance(record, dict) or "event" not in record:
            result.errors.append(f"line {i + 1}: not an event record")
            continue
        result.records.append(record)
    return result


def per_feature_counts(records: list) -> dict:
    """Multiset of (event name, task key) pairs.

    The replay-determinism check: two identical seeded runs must produce
    identical per-feature counts, timestamps notwithstanding.
    """
    counts: dict[tuple, int] = {}
    for rec in records:
        key = rec.get("key")
        if key is None and "feature_id" in rec:
            key = [rec["feature_id"], rec.get("slot", 0)]
        sig = (rec["event"], tuple(key) if isinstance(key, list) else key)
        counts[sig] = counts.get(sig, 0) + 1
    return counts


@dataclass
class TraceSummary:
    """Folded view of one trace, ready to render or assert against."""

    n_events: int = 0
    n_torn: int = 0
    n_errors: int = 0
    runs: list = field(default_factory=list)  # RunStarted/Finished digests
    phases: list = field(default_factory=list)  # (span, wall_s, cpu_s, count)
    #: span -> {"wall": [p50, p95, p99], "cpu": [...]}; nearest-rank over
    #: that span's population, no interpolation (deterministic).
    phase_percentiles: dict = field(default_factory=dict)
    slowest: list = field(default_factory=list)  # (key, index, duration, attempts)
    n_retries: int = 0
    n_timeouts: int = 0
    n_crashes: int = 0
    task_status_counts: dict = field(default_factory=dict)
    skipped_by_kind: dict = field(default_factory=dict)  # from events
    report_by_kind: dict = field(default_factory=dict)  # from RunFinished payload
    checkpoint_hits: int = 0
    checkpoint_misses: int = 0
    failure_report: "dict | None" = None
    n_scores: int = 0

    @property
    def checkpoint_reuse(self) -> float:
        total = self.checkpoint_hits + self.checkpoint_misses
        return self.checkpoint_hits / total if total else 0.0

    @property
    def faults_consistent(self) -> bool:
        """Do event-derived skip counts match the embedded report?"""
        report = {k: v for k, v in self.report_by_kind.items() if v}
        events = {k: v for k, v in self.skipped_by_kind.items() if v}
        return report == events


def summarize_trace(result: "TraceReadResult | list") -> TraceSummary:
    """Fold a replayed trace (or a bare record list) into a summary."""
    if isinstance(result, TraceReadResult):
        records = result.records
        summary = TraceSummary(n_torn=result.n_torn, n_errors=len(result.errors))
    else:
        records = list(result)
        summary = TraceSummary()
    summary.n_events = len(records)

    phases: dict[str, list] = {}
    samples: dict[str, list] = {}  # span -> [(wall_s, cpu_s), ...]
    open_runs: list[dict] = []
    tasks: list[tuple] = []
    for rec in records:
        name = rec["event"]
        if name == "RunStarted":
            open_runs.append(
                {
                    "kind": rec.get("kind", ""),
                    "n_tasks": rec.get("n_tasks", 0),
                    "mode": rec.get("mode", ""),
                    "n_workers": rec.get("n_workers", 1),
                    "status": "unfinished",
                }
            )
        elif name == "RunFinished":
            digest = {
                "kind": rec.get("kind", ""),
                "status": rec.get("status", ""),
                "n_models": rec.get("n_models", 0),
                "n_skipped": rec.get("n_skipped", 0),
                "n_failed": rec.get("n_failed", 0),
            }
            for run in reversed(open_runs):
                if run["status"] == "unfinished" and run["kind"] == digest["kind"]:
                    run.update(digest)
                    break
            else:
                open_runs.append(digest)
            report = rec.get("failure_report")
            if report is not None:
                summary.failure_report = report
                for failure in report.get("failures", []):
                    kind = failure.get("kind", "exception")
                    summary.report_by_kind[kind] = summary.report_by_kind.get(kind, 0) + 1
        elif name == "SpanFinished":
            span_name = rec.get("span", "?")
            agg = phases.setdefault(span_name, [0.0, 0.0, 0])
            agg[0] += rec.get("wall_s", 0.0)
            agg[1] += rec.get("cpu_s", 0.0)
            agg[2] += 1
            samples.setdefault(span_name, []).append(
                (rec.get("wall_s", 0.0), rec.get("cpu_s", 0.0))
            )
        elif name == "FeatureTaskFinished":
            status = rec.get("status", "ok")
            summary.task_status_counts[status] = (
                summary.task_status_counts.get(status, 0) + 1
            )
            if status == "skipped":
                kind = rec.get("kind") or "exception"
                summary.skipped_by_kind[kind] = summary.skipped_by_kind.get(kind, 0) + 1
            tasks.append(
                (
                    rec.get("duration_s"),
                    rec.get("key"),
                    rec.get("index", -1),
                    rec.get("attempts", 1),
                )
            )
        elif name == "RetryScheduled":
            summary.n_retries += 1
        elif name == "TaskTimedOut":
            summary.n_timeouts += 1
        elif name == "WorkerCrashDetected":
            summary.n_crashes += 1
        elif name == "CheckpointHit":
            summary.checkpoint_hits += 1
        elif name == "CheckpointMiss":
            summary.checkpoint_misses += 1
        elif name == "ScoreComputed":
            summary.n_scores += 1

    summary.runs = open_runs
    summary.phases = sorted(
        ((name, w, c, n) for name, (w, c, n) in phases.items()),
        key=lambda row: (-row[1], row[0]),
    )
    summary.phase_percentiles = {
        name: {
            "wall": [
                nearest_rank_percentile([w for w, _ in pop], p)
                for p in PERCENTILE_POINTS
            ],
            "cpu": [
                nearest_rank_percentile([c for _, c in pop], p)
                for p in PERCENTILE_POINTS
            ],
        }
        for name, pop in samples.items()
    }
    timed = [t for t in tasks if t[0] is not None]
    summary.slowest = sorted(timed, key=lambda t: (-t[0], t[2]))[:10]
    return summary


#: Span name -> the call-graph qualname whose cost the span measures.
#: Parametrized spans (``ensemble.member[3]``) match by their base name.
#: This is the join key between fracscope traces and fraclint's call
#: graph: the optimization ledger (``python -m repro.analysis --profile``)
#: uses it to price static findings with measured wall/CPU time.
SPAN_QUALNAMES = {
    "fit.preprocess": "repro.core.imputation.Preprocessor.fit",
    "fit.build_tasks": "repro.core.frac.FRaC.fit",
    # The training span wraps the batched/per-feature dispatcher, so
    # findings in run_feature_task AND run_feature_batch both price to it
    # (the ledger walks call-graph reachability from this function).
    "fit.train": "repro.core.engine.run_feature_tasks",
    # One batch-wave work item: carries batch_size / group attrs so the
    # next perf PR can price per-group amortization from trace data.
    "fit.batch": "repro.core.engine.run_feature_batch",
    "score.contributions": "repro.core.engine.score_contributions",
    # The scoring hot path, nested under score.contributions. The span
    # was named score.gather while gather_surprisals was the per-model
    # masked-copy loop (the ledger's then-#1 measured finding) and became
    # score.batch when the loop was batched; both names map to the same
    # qualname, which is how `repro trace diff` matches the renamed
    # populations across old and new traces.
    "score.gather": "repro.core.engine.gather_surprisals",
    "score.batch": "repro.core.engine.gather_surprisals",
    "jl.project": "repro.core.preprojection.JLFRaC._project",
    "ensemble.member": "repro.core.ensemble.FRaCEnsemble.fit",
}


def qualname_for_span(span: str) -> "str | None":
    """Call-graph qualname a span name attributes to, if known.

    Strips a ``[...]`` parameter suffix first, so every
    ``ensemble.member[i]`` series folds onto one qualname.
    """
    base = span.split("[", 1)[0]
    return SPAN_QUALNAMES.get(base)


@dataclass
class AttributedCost:
    """Measured cost folded onto one call-graph qualname."""

    qualname: str
    wall_s: float = 0.0
    cpu_s: float = 0.0
    n_spans: int = 0
    #: FeatureTaskFinished count when the qualname is the task body.
    n_tasks: int = 0


def attribute_trace(records: list) -> "dict[str, AttributedCost]":
    """Fold a trace's span costs onto call-graph qualnames.

    ``SpanFinished`` events supply wall/CPU seconds via
    :data:`SPAN_QUALNAMES`; ``FeatureTaskFinished`` events add the task
    count to the task-body qualname (``fit.train``'s target) without
    double-counting time. Spans with no mapping are ignored — they are
    visible in :func:`summarize_trace` either way.
    """
    costs: dict[str, AttributedCost] = {}

    def bucket(qualname: str) -> AttributedCost:
        if qualname not in costs:
            costs[qualname] = AttributedCost(qualname=qualname)
        return costs[qualname]

    for rec in records:
        event = rec.get("event")
        if event == "SpanFinished":
            qualname = qualname_for_span(rec.get("span", ""))
            if qualname is None:
                continue
            agg = bucket(qualname)
            agg.wall_s += rec.get("wall_s", 0.0)
            agg.cpu_s += rec.get("cpu_s", 0.0)
            agg.n_spans += 1
        elif event == "FeatureTaskFinished":
            agg = bucket(SPAN_QUALNAMES["fit.train"])
            agg.n_tasks += 1
    return costs


def render_trace_summary(summary: TraceSummary) -> str:
    """Deterministic text rendering of a :class:`TraceSummary`."""
    lines: list[str] = []
    tail = ""
    if summary.n_torn:
        tail += f", {summary.n_torn} torn line(s) dropped"
    if summary.n_errors:
        tail += f", {summary.n_errors} undecodable line(s)"
    lines.append(f"trace summary: {summary.n_events} event(s){tail}")

    if summary.runs:
        lines.append("")
        lines.append("runs")
        for run in summary.runs:
            geometry = ""
            if run.get("mode"):
                geometry = f", {run['mode']} x{run.get('n_workers', 1)}"
            lines.append(
                f"  {run['kind'] or '?'}: {run['status']}"
                f" — {run.get('n_models', 0)} model(s),"
                f" {run.get('n_skipped', 0)} skipped,"
                f" {run.get('n_failed', 0)} failed"
                f" ({run.get('n_tasks', 0)} task(s){geometry})"
            )

    if summary.phases:
        lines.append("")
        lines.append("phases (by total wall time; p50/p95/p99 nearest-rank)")
        width = max(len(name) for name, *_ in summary.phases)
        total_w = total_c = 0.0
        for name, wall, cpu, count in summary.phases:
            total_w += wall
            total_c += cpu
            row = f"  {name.ljust(width)}  wall={wall:.3f}s  cpu={cpu:.3f}s  x{count}"
            pct = summary.phase_percentiles.get(name)
            if pct is not None:
                wp = "/".join(f"{v:.3f}" for v in pct["wall"])
                cp = "/".join(f"{v:.3f}" for v in pct["cpu"])
                row += f"  wall-p50/p95/p99={wp}  cpu-p50/p95/p99={cp}"
            lines.append(row)
        lines.append(f"  {'total'.ljust(width)}  wall={total_w:.3f}s  cpu={total_c:.3f}s")

    if summary.task_status_counts:
        lines.append("")
        lines.append("tasks")
        for status in sorted(summary.task_status_counts):
            lines.append(f"  {status}: {summary.task_status_counts[status]}")

    if summary.slowest:
        lines.append("")
        lines.append("slowest features (scheduler-observed)")
        for duration, key, index, attempts in summary.slowest:
            label = f"key={key}" if key is not None else f"index={index}"
            lines.append(f"  {label}: {duration:.3f}s ({attempts} attempt(s))")

    lines.append("")
    lines.append("faults")
    lines.append(f"  retries scheduled: {summary.n_retries}")
    lines.append(f"  timeouts observed: {summary.n_timeouts}")
    lines.append(f"  worker crashes detected: {summary.n_crashes}")
    for kind in FAILURE_KINDS:
        from_events = summary.skipped_by_kind.get(kind, 0)
        from_report = summary.report_by_kind.get(kind, 0)
        lines.append(
            f"  skipped ({kind}): {from_events} [failure report: {from_report}]"
        )
    lines.append(
        "  event/report accounting: "
        + ("consistent" if summary.faults_consistent else "MISMATCH")
    )

    if summary.checkpoint_hits or summary.checkpoint_misses:
        lines.append("")
        lines.append(
            f"checkpoint: {summary.checkpoint_hits} hit(s) /"
            f" {summary.checkpoint_misses} miss(es)"
            f" ({100.0 * summary.checkpoint_reuse:.1f}% reused)"
        )

    if summary.failure_report and summary.failure_report.get("failures"):
        lines.append("")
        lines.append("failure report (embedded in RunFinished)")
        for failure in summary.failure_report["failures"]:
            lines.append(
                f"  item {failure.get('index')} (key={failure.get('key')!r}):"
                f" {failure.get('kind')} after {failure.get('attempts')} attempt(s)"
                f" — {failure.get('message')}"
            )

    if summary.n_scores:
        lines.append("")
        lines.append(f"scoring: {summary.n_scores} batch(es) scored")
    return "\n".join(lines)
