"""Markdown run reports: one trace file -> one reviewable document.

``python -m repro trace report run.jsonl`` folds everything fracscope
can derive from a single trace — the run digests, per-phase totals with
nearest-rank percentiles, the reconstructed worker timeline, the
critical path, fault and checkpoint accounting — into GitHub-flavored
markdown. CI uploads it as an artifact from the tier-1 trace, so every
PR carries a machine-written account of what its test run actually did.

Same determinism contract as the rest of the analysis layer: the report
is a pure function of the record list, byte-identical across renders.
"""

from __future__ import annotations

from repro.telemetry.timeline import STRAGGLER_FACTOR, Timeline, build_timeline
from repro.telemetry.trace import (
    FAILURE_KINDS,
    TraceReadResult,
    TraceSummary,
    read_trace,
    summarize_trace,
)


def _phase_table(summary: TraceSummary) -> "list[str]":
    lines = [
        "| phase | wall (s) | cpu (s) | count | wall p50/p95/p99 | cpu p50/p95/p99 |",
        "|---|---|---|---|---|---|",
    ]
    for name, wall, cpu, count in summary.phases:
        pct = summary.phase_percentiles.get(name)
        wp = cp = "—"
        if pct is not None:
            wp = "/".join(f"{v:.3f}" for v in pct["wall"])
            cp = "/".join(f"{v:.3f}" for v in pct["cpu"])
        lines.append(f"| `{name}` | {wall:.3f} | {cpu:.3f} | {count} | {wp} | {cp} |")
    return lines


def _timeline_section(timeline: Timeline) -> "list[str]":
    lines: list[str] = []
    lines.append(
        f"{len(timeline.intervals)} task interval(s) packed onto"
        f" {timeline.n_slots} virtual slot(s);"
        f" makespan {timeline.makespan_s:.3f}s,"
        f" overall utilization {100.0 * timeline.utilization:.1f}%."
    )
    if timeline.n_instant:
        lines.append(
            f" {timeline.n_instant} task(s) were replayed from checkpoint"
            f" (finish record only)."
        )
    if timeline.lanes:
        lines.append("")
        lines.append("| slot | tasks | busy (s) | share of makespan |")
        lines.append("|---|---|---|---|")
        makespan = timeline.makespan_s
        for lane in timeline.lanes:
            share = 100.0 * lane.busy_s / makespan if makespan > 0.0 else 0.0
            lines.append(
                f"| {lane.slot} | {lane.n_tasks} | {lane.busy_s:.3f} | {share:.1f}% |"
            )
    if timeline.parallelism:
        lines.append("")
        profile = ", ".join(
            f"{level} in flight for {seconds:.3f}s"
            for level, seconds in timeline.parallelism
        )
        lines.append(f"Parallelism profile: {profile}.")
    waits = [iv.queue_wait_s for iv in timeline.intervals if iv.queue_wait_s is not None]
    if waits:
        executes = [
            iv.duration_s for iv in timeline.intervals if iv.duration_s is not None
        ]
        lines.append("")
        lines.append(
            f"Queue-wait vs execute over {len(waits)} scheduler-timed task(s):"
            f" {sum(executes):.3f}s executing, {sum(waits):.3f}s queued."
        )
    if timeline.median_duration_s is not None:
        lines.append("")
        if timeline.stragglers:
            worst = timeline.stragglers[0]
            lines.append(
                f"{len(timeline.stragglers)} straggler(s) at >="
                f" {STRAGGLER_FACTOR:.1f}x the median execute time"
                f" ({timeline.median_duration_s:.3f}s); worst:"
                f" key={worst.key} at {worst.duration_s:.3f}s."
            )
        else:
            lines.append(
                f"No stragglers (no task reached {STRAGGLER_FACTOR:.1f}x the"
                f" median execute time of {timeline.median_duration_s:.3f}s)."
            )
    return lines


def _critical_path_section(timeline: Timeline) -> "list[str]":
    lines = [
        "| phase | wall (s) | critical (s) | parallel tasks |",
        "|---|---|---|---|",
    ]
    for seg in timeline.segments:
        lines.append(
            f"| `{seg.name}` | {seg.wall_s:.3f} | {seg.critical_s:.3f} |"
            f" {seg.n_tasks or '—'} |"
        )
    lines.append("")
    lines.append(
        f"Critical path {timeline.critical_path_s:.3f}s vs observed wall"
        f" {timeline.observed_wall_s:.3f}s"
    )
    if timeline.critical_path_s > 0.0:
        headroom = timeline.observed_wall_s / timeline.critical_path_s
        lines[-1] += (
            f" — max theoretical speedup at infinite workers: {headroom:.2f}x."
        )
    else:
        lines[-1] += "."
    return lines


def render_run_report(
    source: "TraceReadResult | list | str", *, title: str = "run report"
) -> str:
    """Render one trace as a markdown run report."""
    if isinstance(source, TraceReadResult):
        result = source
    elif isinstance(source, list):
        result = TraceReadResult(path="<records>", records=source)
    else:
        result = read_trace(source)
    summary = summarize_trace(result)
    timeline = build_timeline(result)

    lines: list[str] = []
    lines.append(f"# fracscope {title}")
    lines.append("")
    lines.append(f"Trace: `{result.path}` — {summary.n_events} event(s)")
    if summary.n_torn or summary.n_errors:
        lines[-1] += (
            f" ({summary.n_torn} torn line(s) dropped,"
            f" {summary.n_errors} undecodable)"
        )
    lines[-1] += "."

    if summary.runs:
        lines.append("")
        lines.append("## Runs")
        lines.append("")
        lines.append("| kind | status | models | skipped | failed | tasks | geometry |")
        lines.append("|---|---|---|---|---|---|---|")
        for run in summary.runs:
            geometry = "—"
            if run.get("mode"):
                geometry = f"{run['mode']} x{run.get('n_workers', 1)}"
            lines.append(
                f"| {run['kind'] or '?'} | {run['status']}"
                f" | {run.get('n_models', 0)} | {run.get('n_skipped', 0)}"
                f" | {run.get('n_failed', 0)} | {run.get('n_tasks', 0)}"
                f" | {geometry} |"
            )

    if summary.phases:
        lines.append("")
        lines.append("## Phases")
        lines.append("")
        lines.extend(_phase_table(summary))

    if timeline.intervals or timeline.n_instant:
        lines.append("")
        lines.append("## Worker timeline")
        lines.append("")
        lines.extend(_timeline_section(timeline))

    if timeline.segments:
        lines.append("")
        lines.append("## Critical path")
        lines.append("")
        lines.extend(_critical_path_section(timeline))

    lines.append("")
    lines.append("## Faults")
    lines.append("")
    lines.append(
        f"{summary.n_retries} retry(ies) scheduled, {summary.n_timeouts}"
        f" timeout(s), {summary.n_crashes} worker crash(es)."
    )
    skipped = [
        f"{kind}: {summary.skipped_by_kind[kind]}"
        for kind in FAILURE_KINDS
        if summary.skipped_by_kind.get(kind)
    ]
    if skipped:
        lines.append("")
        lines.append("Skipped by kind — " + ", ".join(skipped) + ".")
    lines.append("")
    lines.append(
        "Event/report accounting: "
        + ("consistent." if summary.faults_consistent else "**MISMATCH**.")
    )

    if summary.checkpoint_hits or summary.checkpoint_misses:
        lines.append("")
        lines.append("## Checkpoint")
        lines.append("")
        lines.append(
            f"{summary.checkpoint_hits} hit(s), {summary.checkpoint_misses}"
            f" miss(es) — {100.0 * summary.checkpoint_reuse:.1f}% reused."
        )

    if summary.n_scores:
        lines.append("")
        lines.append(f"Scoring: {summary.n_scores} batch(es) scored.")
    lines.append("")
    return "\n".join(lines)
