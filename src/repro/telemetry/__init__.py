"""fracscope: structured run telemetry for feature-scale FRaC runs.

A FRaC run at SNP scale is >170k independent work items behind one long
batch; this package makes that batch observable without ever touching
its results:

- :mod:`~repro.telemetry.events` — the typed event taxonomy (run and
  task lifecycle, retries/timeouts/crashes, checkpoint reuse, folds,
  scoring, spans);
- :mod:`~repro.telemetry.bus` — the :class:`EventBus` delivering
  stamped records to pluggable sinks and a metrics registry;
- :mod:`~repro.telemetry.sinks` — JSONL trace file (kill-tolerant),
  in-memory collector, throttled stderr progress line;
- :mod:`~repro.telemetry.spans` — nested wall/CPU/RSS phase accounting
  (the successor of ``profiling.SectionTimer``);
- :mod:`~repro.telemetry.metrics` — deterministic counters / gauges /
  fixed-bucket histograms;
- :mod:`~repro.telemetry.trace` — the read/summarize/render toolchain
  behind ``python -m repro trace``;
- :mod:`~repro.telemetry.timeline` — per-slot timeline reconstruction,
  utilization, stragglers, parallelism profile, critical path;
- :mod:`~repro.telemetry.diff` — two-trace comparison behind
  ``python -m repro trace diff A B``;
- :mod:`~repro.telemetry.report` — the markdown run report behind
  ``python -m repro trace report``;
- :mod:`~repro.telemetry.openmetrics` — stdlib OpenMetrics text
  exposition (``--openmetrics PATH``).

Telemetry is **off by default and zero-overhead when off**: the ambient
bus (:func:`get_bus`) is ``None`` and every instrumentation site is a
single identity check. When on, it is an observation channel only —
scores are bit-identical with and without it (asserted by the
integration suite; see docs/observability.md).
"""

from repro.telemetry.bus import EventBus, TraceRecord
from repro.telemetry.diff import (
    RATIO_THRESHOLD,
    PopulationDelta,
    SpanStats,
    TraceDiff,
    diff_traces,
    render_trace_diff,
)
from repro.telemetry.events import (
    EVENT_TYPES,
    TIMING_FIELDS,
    CheckpointHit,
    CheckpointMiss,
    FeatureTaskFinished,
    FeatureTaskStarted,
    FoldTrained,
    RetryScheduled,
    RunFinished,
    RunStarted,
    ScoreComputed,
    SpanFinished,
    SpanStarted,
    TaskTimedOut,
    TelemetryEvent,
    WorkerCrashDetected,
)
from repro.telemetry.metrics import (
    DURATION_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.openmetrics import (
    OpenMetricsSink,
    metric_name,
    render_openmetrics,
)
from repro.telemetry.report import render_run_report
from repro.telemetry.runtime import (
    configure,
    emit,
    get_bus,
    on_worker_start,
    set_bus,
    shutdown,
)
from repro.telemetry.sinks import (
    TRACE_FORMAT,
    JsonlTraceSink,
    MemorySink,
    ProgressSink,
    Sink,
    TelemetrySinkError,
)
from repro.telemetry.spans import SpanHandle, span
from repro.telemetry.timeline import (
    STRAGGLER_FACTOR,
    PhaseSegment,
    SlotLane,
    TaskInterval,
    Timeline,
    build_timeline,
    render_timeline,
)
from repro.telemetry.trace import (
    PERCENTILE_POINTS,
    SPAN_QUALNAMES,
    TraceError,
    TraceReadResult,
    TraceSummary,
    nearest_rank_percentile,
    per_feature_counts,
    read_trace,
    render_trace_summary,
    summarize_trace,
)

__all__ = [
    "EventBus",
    "TraceRecord",
    "TelemetryEvent",
    "EVENT_TYPES",
    "TIMING_FIELDS",
    "RunStarted",
    "RunFinished",
    "FeatureTaskStarted",
    "FeatureTaskFinished",
    "RetryScheduled",
    "TaskTimedOut",
    "WorkerCrashDetected",
    "CheckpointHit",
    "CheckpointMiss",
    "FoldTrained",
    "ScoreComputed",
    "SpanStarted",
    "SpanFinished",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DURATION_BUCKETS_S",
    "Sink",
    "MemorySink",
    "JsonlTraceSink",
    "ProgressSink",
    "TelemetrySinkError",
    "TRACE_FORMAT",
    "span",
    "SpanHandle",
    "get_bus",
    "set_bus",
    "emit",
    "configure",
    "shutdown",
    "on_worker_start",
    "TraceError",
    "TraceReadResult",
    "TraceSummary",
    "read_trace",
    "summarize_trace",
    "render_trace_summary",
    "per_feature_counts",
    "nearest_rank_percentile",
    "PERCENTILE_POINTS",
    "SPAN_QUALNAMES",
    "Timeline",
    "TaskInterval",
    "SlotLane",
    "PhaseSegment",
    "STRAGGLER_FACTOR",
    "build_timeline",
    "render_timeline",
    "TraceDiff",
    "SpanStats",
    "PopulationDelta",
    "RATIO_THRESHOLD",
    "diff_traces",
    "render_trace_diff",
    "render_run_report",
    "OpenMetricsSink",
    "render_openmetrics",
    "metric_name",
]
