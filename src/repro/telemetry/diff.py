"""Trace diff: compare two runs of the same workload from their traces.

The question behind every perf PR is "what actually changed?", and the
honest answer lives in trace data, not in commit messages. This module
compares two ``repro-trace-v1`` files by:

- **matched span populations** — spans fold onto their base name
  (``ensemble.member[3]`` → ``ensemble.member``), carrying the
  call-graph qualname from :data:`SPAN_QUALNAMES` when known, so a
  population present in both traces yields per-population wall/CPU/RSS
  deltas even when the runs used different parallel geometry. A span
  that was *renamed* between the runs (``score.gather`` →
  ``score.batch``) still matches when exactly one name on each side
  maps to the same qualname: the code being measured is the same, so
  the populations compare — rendered as ``old -> new``;
- **deterministic thresholds** — a population counts as changed only
  when its wall ratio leaves the ``[1/RATIO_THRESHOLD,
  RATIO_THRESHOLD]`` band (default ±10%); no machine-dependent
  tolerance, so the same two files always produce the same verdict;
- **event-multiset drift** — per-event-name counts compared across the
  runs; a drifted multiset means the runs did *different work* (extra
  retries, lost checkpoint hits), which reframes any timing delta;
- **headline wall** — the sum of top-level (depth-0) span walls per
  trace, and their ratio as the speedup.

``python -m repro trace diff A B`` renders the result. Like every
fracscope analysis, the diff is a pure function of the two record
lists: byte-identical output for identical inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.telemetry.trace import (
    TraceReadResult,
    qualname_for_span,
    read_trace,
)

#: A population's wall ratio must leave [1/RATIO_THRESHOLD, RATIO_THRESHOLD]
#: to count as changed. Shared with the regression gate's fallback band.
RATIO_THRESHOLD = 1.10


@dataclass
class SpanStats:
    """One span population's aggregate in one trace."""

    name: str
    count: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    rss_peak_bytes: int = 0  # max over the population


@dataclass
class PopulationDelta:
    """One span population across both traces."""

    name: str
    qualname: "str | None" = None
    a: "SpanStats | None" = None
    b: "SpanStats | None" = None

    @property
    def wall_ratio(self) -> "float | None":
        """B's wall over A's (>1 means B slower); None when unmatched."""
        if self.a is None or self.b is None or self.a.wall_s <= 0.0:
            return None
        return self.b.wall_s / self.a.wall_s

    @property
    def verdict(self) -> str:
        if self.a is None:
            return "only-b"
        if self.b is None:
            return "only-a"
        ratio = self.wall_ratio
        if ratio is None:
            return "unchanged"
        if ratio > RATIO_THRESHOLD:
            return "regressed"
        if ratio < 1.0 / RATIO_THRESHOLD:
            return "improved"
        return "unchanged"


@dataclass
class TraceDiff:
    """Full comparison of two traces."""

    label_a: str
    label_b: str
    populations: list = field(default_factory=list)  # PopulationDelta
    event_drift: list = field(default_factory=list)  # (event, count_a, count_b)
    top_wall_a: float = 0.0  # sum of depth-0 span walls
    top_wall_b: float = 0.0

    @property
    def speedup(self) -> "float | None":
        """A's headline wall over B's (>1: B is faster); None if degenerate."""
        if self.top_wall_a <= 0.0 or self.top_wall_b <= 0.0:
            return None
        return self.top_wall_a / self.top_wall_b

    @property
    def events_drifted(self) -> bool:
        return bool(self.event_drift)


def _records(source: "TraceReadResult | list | str") -> list:
    if isinstance(source, TraceReadResult):
        return source.records
    if isinstance(source, list):
        return source
    return read_trace(source).records


def _span_populations(records: list) -> "dict[str, SpanStats]":
    stats: dict[str, SpanStats] = {}
    for rec in records:
        if rec.get("event") != "SpanFinished":
            continue
        base = rec.get("span", "?").split("[", 1)[0]
        agg = stats.setdefault(base, SpanStats(name=base))
        agg.count += 1
        agg.wall_s += rec.get("wall_s", 0.0)
        agg.cpu_s += rec.get("cpu_s", 0.0)
        agg.rss_peak_bytes = max(agg.rss_peak_bytes, rec.get("rss_peak_bytes", 0) or 0)
    return stats


def _top_level_wall(records: list) -> float:
    return sum(
        rec.get("wall_s", 0.0)
        for rec in records
        if rec.get("event") == "SpanFinished" and rec.get("depth", 0) == 0
    )


def _event_counts(records: list) -> "dict[str, int]":
    counts: dict[str, int] = {}
    for rec in records:
        name = rec.get("event", "?")
        counts[name] = counts.get(name, 0) + 1
    return counts


def _rename_matches(names_a: set, names_b: set) -> "dict[str, str]":
    """Pair spans renamed between the traces through their shared qualname.

    A name present only in A matches a name present only in B when both
    map to the same :data:`SPAN_QUALNAMES` qualname and each side has
    exactly one such name — the measured code is identical, only its
    label moved (``score.gather`` → ``score.batch``). Ambiguous fan-outs
    (two old names onto one new, or vice versa) stay unmatched: a wrong
    pairing would fabricate a ratio.
    """
    by_qual_a: "dict[str, list[str]]" = {}
    for name in sorted(names_a - names_b):
        qual = qualname_for_span(name)
        if qual is not None:
            by_qual_a.setdefault(qual, []).append(name)
    by_qual_b: "dict[str, list[str]]" = {}
    for name in sorted(names_b - names_a):
        qual = qualname_for_span(name)
        if qual is not None:
            by_qual_b.setdefault(qual, []).append(name)
    return {
        only_a[0]: by_qual_b[qual][0]
        for qual, only_a in by_qual_a.items()
        if len(only_a) == 1 and len(by_qual_b.get(qual, ())) == 1
    }


def diff_traces(
    a: "TraceReadResult | list | str",
    b: "TraceReadResult | list | str",
    *,
    label_a: str = "A",
    label_b: str = "B",
) -> TraceDiff:
    """Compare two traces (results, record lists, or paths)."""
    records_a = _records(a)
    records_b = _records(b)
    stats_a = _span_populations(records_a)
    stats_b = _span_populations(records_b)

    diff = TraceDiff(label_a=label_a, label_b=label_b)
    renames = _rename_matches(set(stats_a), set(stats_b))
    renamed_b = set(renames.values())
    for name in sorted(set(stats_a) | set(stats_b)):
        if name in renamed_b:
            continue  # folded into its rename partner's delta below
        if name in renames:
            name_b = renames[name]
            diff.populations.append(
                PopulationDelta(
                    name=f"{name} -> {name_b}",
                    qualname=qualname_for_span(name),
                    a=stats_a[name],
                    b=stats_b[name_b],
                )
            )
            continue
        diff.populations.append(
            PopulationDelta(
                name=name,
                qualname=qualname_for_span(name),
                a=stats_a.get(name),
                b=stats_b.get(name),
            )
        )
    counts_a = _event_counts(records_a)
    counts_b = _event_counts(records_b)
    for name in sorted(set(counts_a) | set(counts_b)):
        ca, cb = counts_a.get(name, 0), counts_b.get(name, 0)
        if ca != cb:
            diff.event_drift.append((name, ca, cb))
    diff.top_wall_a = _top_level_wall(records_a)
    diff.top_wall_b = _top_level_wall(records_b)
    return diff


def _fmt_ratio(ratio: "float | None") -> str:
    if ratio is None:
        return "n/a"
    if ratio >= 1.0:
        return f"{ratio:.2f}x slower"
    return f"{1.0 / ratio:.2f}x faster"


def render_trace_diff(diff: TraceDiff) -> str:
    """Deterministic text rendering of a :class:`TraceDiff`."""
    lines: list[str] = []
    lines.append(f"trace diff: A={diff.label_a}  B={diff.label_b}")
    lines.append(
        f"  headline wall (top-level spans): A={diff.top_wall_a:.3f}s"
        f"  B={diff.top_wall_b:.3f}s"
    )
    speedup = diff.speedup
    if speedup is not None:
        if speedup >= 1.0:
            lines.append(f"  B is {speedup:.2f}x faster than A")
        else:
            lines.append(f"  B is {1.0 / speedup:.2f}x slower than A")

    if diff.populations:
        lines.append("")
        lines.append(
            f"span populations (changed = wall ratio outside"
            f" +/-{100.0 * (RATIO_THRESHOLD - 1.0):.0f}% band)"
        )
        width = max(len(p.name) for p in diff.populations)
        for pop in diff.populations:
            row = f"  {pop.name.ljust(width)}  [{pop.verdict}]"
            if pop.a is not None:
                row += f"  A: wall={pop.a.wall_s:.3f}s x{pop.a.count}"
            if pop.b is not None:
                row += f"  B: wall={pop.b.wall_s:.3f}s x{pop.b.count}"
            if pop.wall_ratio is not None:
                row += f"  ({_fmt_ratio(pop.wall_ratio)})"
            if pop.qualname:
                row += f"  via `{pop.qualname}`"
            lines.append(row)

    lines.append("")
    if diff.event_drift:
        lines.append("event-multiset drift (the runs did different work)")
        for name, ca, cb in diff.event_drift:
            lines.append(f"  {name}: A={ca}  B={cb}")
    else:
        lines.append("event multisets: consistent (same work, timing aside)")
    return "\n".join(lines)


def log_ratio(a: float, b: float) -> float:
    """log(b/a) guarded for the degenerate zero cases.

    The regression gate works in log-ratio space (symmetric: a 2x
    slowdown and a 2x speedup are equidistant from 0). Zero or negative
    inputs have no ratio; callers must filter, this raises.
    """
    if a <= 0.0 or b <= 0.0:
        raise ValueError(f"log ratio needs positive inputs, got {a!r}, {b!r}")
    return math.log(b / a)  # fraclint: disable=FRL003 -- both inputs validated positive above
