"""Spans: nested wall/CPU/RSS accounting for named run phases.

A span brackets one phase of a run (preprocessing, training, scoring,
one ensemble member, the JL projection pass) and emits paired
``SpanStarted`` / ``SpanFinished`` events carrying the phase's wall
time, CPU time, and the process's peak RSS at close. Spans nest; the
per-thread depth is recorded so a trace reader can rebuild the phase
tree without matching timestamps.

All clock and RSS reads route through :mod:`repro.parallel.profiling`
(the FRL007 containment): a span *observes* time, it never feeds it
back into results. With telemetry off, ``span()`` yields immediately
and touches no clock at all.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass

from repro.parallel import profiling
from repro.telemetry.events import SpanFinished, SpanStarted
from repro.telemetry.runtime import get_bus

_STATE = threading.local()


def _depth() -> int:
    return getattr(_STATE, "depth", 0)


@dataclass
class SpanHandle:
    """What an open ``span()`` yields: the measured phase so far."""

    name: str
    depth: int
    wall_s: float = 0.0
    cpu_s: float = 0.0


@contextmanager
def span(name: str, *, bus=None, attrs: "dict | None" = None):
    """Measure one named phase and emit its start/finish events.

    ``bus`` defaults to the ambient bus; with no bus installed the
    context is a pure pass-through (zero overhead when off). Yields a
    :class:`SpanHandle` whose timings are filled in at exit, so callers
    that also want the numbers locally (e.g. the deprecated
    ``timed_section`` shim) need not re-measure. ``attrs`` are
    deterministic phase parameters stamped onto both paired events
    (batch size, plan-group key — facts about the work, never timings).
    """
    bus = bus if bus is not None else get_bus()
    if bus is None:
        yield None
        return
    depth = _depth()
    handle = SpanHandle(name=name, depth=depth)
    bus.emit(SpanStarted(span=name, depth=depth, attrs=attrs))
    _STATE.depth = depth + 1
    w0 = profiling.wall_seconds()
    c0 = profiling.cpu_seconds()
    try:
        yield handle
    finally:
        handle.wall_s = profiling.wall_seconds() - w0
        handle.cpu_s = profiling.cpu_seconds() - c0
        _STATE.depth = depth
        bus.emit(
            SpanFinished(
                span=name,
                depth=depth,
                wall_s=handle.wall_s,
                cpu_s=handle.cpu_s,
                rss_peak_bytes=profiling.peak_rss_bytes(),
                attrs=attrs,
            )
        )
