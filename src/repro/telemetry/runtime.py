"""Process-global telemetry state: the ambient bus and its lifecycle.

The library is observable through one ambient :class:`EventBus`. By
default none is installed, and every instrumentation site reduces to a
single ``get_bus() is None`` check — the zero-overhead-when-off
contract: no event objects are built, no sinks exist, no file is
written.

``configure()`` installs a bus (typically from the CLI's ``--trace`` /
``--progress`` flags or a test fixture), ``shutdown()`` closes it.
Process-mode worker children must never inherit the parent's sinks —
a forked worker writing to the parent's trace file descriptor would
interleave bytes with the parent — so the executor's process-pool
initializer calls :func:`on_worker_start`, which drops the inherited
bus reference before any task runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.telemetry.bus import EventBus
from repro.telemetry.sinks import JsonlTraceSink, ProgressSink

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.events import TelemetryEvent

_BUS: "EventBus | None" = None


def get_bus() -> "EventBus | None":
    """The ambient bus, or ``None`` when telemetry is off (the default)."""
    return _BUS


def set_bus(bus: "EventBus | None") -> "EventBus | None":
    """Install ``bus`` as the ambient bus; returns the previous one."""
    global _BUS
    previous = _BUS
    _BUS = bus
    return previous


def emit(event: "TelemetryEvent") -> None:
    """Emit onto the ambient bus; no-op when telemetry is off."""
    bus = _BUS
    if bus is not None:
        bus.emit(event)


def configure(
    *,
    trace_path: "str | None" = None,
    progress: bool = False,
    append: bool = False,
    openmetrics_path: "str | None" = None,
    extra_sinks: "list | None" = None,
) -> EventBus:
    """Build and install an ambient bus from the common sink recipe.

    Replaces (and closes) any previously configured bus.
    """
    sinks: list = []
    if trace_path:
        sinks.append(JsonlTraceSink(trace_path, append=append))
    if progress:
        sinks.append(ProgressSink())
    if openmetrics_path:
        # Imported here: the OpenMetrics module is only needed when the
        # exposition is requested, keeping the default path lean.
        from repro.telemetry.openmetrics import OpenMetricsSink

        sinks.append(OpenMetricsSink(openmetrics_path))
    sinks.extend(extra_sinks or [])
    bus = EventBus(sinks, trace_path=str(trace_path) if trace_path else None)
    previous = set_bus(bus)
    if previous is not None:
        previous.close()
    return bus


def shutdown() -> "EventBus | None":
    """Close and uninstall the ambient bus; returns it for inspection."""
    bus = set_bus(None)
    if bus is not None:
        bus.close()
    return bus


def on_worker_start() -> None:
    """Disable telemetry in a freshly forked worker process.

    Called by the executor's process-pool initializer. The reference is
    dropped without closing: the sinks (and their file descriptors)
    belong to the parent.
    """
    global _BUS
    _BUS = None
