"""Saving and loading fitted detectors.

FRaC runs at SNP scale are expensive; a production deployment trains once
and scores new patient samples as they arrive. Detectors (FRaC, every
variant, ensembles, baselines) are plain Python objects over numpy state,
so pickling is sufficient — this module adds the envelope a long-lived
artifact needs: a format tag, the library version, and a schema digest so
a loaded detector refuses to score data it was not trained for.

Security note: pickle executes code on load; only load artifacts you
wrote. The envelope's ``format`` tag is checked before unpickling the
payload, but that is integrity hygiene, not sandboxing.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path

import repro
from repro.data.schema import FeatureSchema
from repro.telemetry.runtime import get_bus
from repro.utils.exceptions import ReproError

FORMAT = "repro-detector-v1"


class PersistenceError(ReproError):
    """Raised when a saved artifact cannot be loaded safely."""


def schema_digest(schema: FeatureSchema) -> str:
    """Stable digest of a schema (kinds + arities + names)."""
    h = hashlib.sha256()
    for spec in schema:
        h.update(f"{spec.kind.value}:{spec.arity}:{spec.name};".encode("utf-8"))
    return h.hexdigest()


def save_detector(
    detector,
    path: "str | Path",
    *,
    schema: "FeatureSchema | None" = None,
    metadata: "dict | None" = None,
) -> None:
    """Persist a fitted detector.

    ``schema`` (recommended) is recorded so :func:`load_detector` can
    verify compatibility at load/score time.

    If the detector carries a fault-tolerance ``failure_report_`` (features
    skipped after exhausted retries; see :mod:`repro.parallel.faults`), a
    serializable summary is stored in the envelope metadata under
    ``"failure_report"`` — a scored artifact must disclose which features
    its NS sums are silently missing.

    When telemetry is on (an ambient bus is configured; see
    :mod:`repro.telemetry`), the bus's trace metadata — trace file path,
    event counts, aggregated metrics — is embedded under ``"telemetry"``,
    so a persisted artifact points back at the trace of the run that
    produced it.
    """
    path = Path(path)
    metadata = dict(metadata or {})
    report = getattr(detector, "failure_report_", None)
    if report is not None and len(report) and "failure_report" not in metadata:
        metadata["failure_report"] = report.as_dict()
    bus = get_bus()
    if bus is not None and "telemetry" not in metadata:
        metadata["telemetry"] = bus.trace_metadata()
    envelope = {
        "format": FORMAT,
        "version": repro.__version__,
        "schema_digest": schema_digest(schema) if schema is not None else None,
        "schema": schema,
        "metadata": metadata,
        "detector": detector,
    }
    with path.open("wb") as fh:
        pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)


def load_detector(
    path: "str | Path", *, expected_schema: "FeatureSchema | None" = None
):
    """Load a detector saved by :func:`save_detector`.

    Returns ``(detector, envelope_metadata)``. If ``expected_schema`` is
    given and the artifact recorded one, their digests must match.
    """
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"no such artifact: {path}")
    with path.open("rb") as fh:
        head = fh.read(512)
        if FORMAT.encode("utf-8") not in head:
            raise PersistenceError(
                f"{path} does not look like a {FORMAT} artifact"
            )
        fh.seek(0)
        envelope = pickle.load(fh)
    if not isinstance(envelope, dict) or envelope.get("format") != FORMAT:
        raise PersistenceError(f"{path}: unknown artifact format")
    if expected_schema is not None and envelope.get("schema_digest") is not None:
        if schema_digest(expected_schema) != envelope["schema_digest"]:
            raise PersistenceError(
                f"{path}: detector was trained on a different feature schema"
            )
    return envelope["detector"], envelope.get("metadata", {})
