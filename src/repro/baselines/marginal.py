"""Marginal-distribution baselines.

These detectors look at each feature's marginal distribution only — no
inter-feature models. They are the natural floor for FRaC: the synthetic
anomalies of :mod:`repro.data.synthetic` are built to preserve marginals
while breaking relationships, so FRaC should beat these decisively on
expression data (a property the integration tests assert).
"""

from __future__ import annotations

import numpy as np

from repro.core.imputation import Preprocessor
from repro.core.types import AnomalyDetector
from repro.data.schema import FeatureSchema
from repro.utils.exceptions import DataError, NotFittedError
from repro.utils.validation import check_2d


class ZScoreDetector(AnomalyDetector):
    """Sum of squared per-feature z-scores (missing entries contribute 0)."""

    def __init__(self) -> None:
        self._pre: "Preprocessor | None" = None

    def fit(self, x_train: np.ndarray, schema: FeatureSchema) -> "ZScoreDetector":
        x_train = check_2d(x_train, "x_train")
        self._pre = Preprocessor(schema, standardize=True).fit(x_train)
        return self

    def score(self, x_test: np.ndarray) -> np.ndarray:
        if self._pre is None:
            raise NotFittedError("ZScoreDetector is not fitted; call fit() first")
        z = self._pre.transform_keep_missing(check_2d(x_test, "x_test"))
        return np.nansum(z * z, axis=1)


class MahalanobisDetector(AnomalyDetector):
    """Squared Mahalanobis distance with shrinkage-regularized covariance.

    Parameters
    ----------
    shrinkage:
        Weight of the identity target in the covariance estimate
        ``(1 - s) * Cov + s * I`` (over standardized features); needed
        whenever n_features approaches or exceeds n_samples.
    """

    def __init__(self, shrinkage: float = 0.5) -> None:
        if not 0.0 < shrinkage <= 1.0:
            raise DataError(f"shrinkage must lie in (0, 1]; got {shrinkage}")
        self.shrinkage = float(shrinkage)
        self._pre: "Preprocessor | None" = None
        self._precision: "np.ndarray | None" = None

    def fit(self, x_train: np.ndarray, schema: FeatureSchema) -> "MahalanobisDetector":
        x_train = check_2d(x_train, "x_train")
        self._pre = Preprocessor(schema, standardize=True).fit(x_train)
        x = self._pre.transform(x_train)
        d = x.shape[1]
        cov = np.cov(x, rowvar=False) if x.shape[0] > 1 else np.eye(d)
        cov = np.atleast_2d(cov)
        shrunk = (1.0 - self.shrinkage) * cov + self.shrinkage * np.eye(d)
        self._precision = np.linalg.inv(shrunk)
        return self

    def score(self, x_test: np.ndarray) -> np.ndarray:
        if self._precision is None:
            raise NotFittedError("MahalanobisDetector is not fitted; call fit() first")
        x = self._pre.transform(check_2d(x_test, "x_test"))
        return np.einsum("ij,jk,ik->i", x, self._precision, x)
