"""One-class SVM (Scholkopf et al., "New support vector algorithms", 2000).

The second competing method the paper cites. We implement the linear
nu-one-class SVM by solving its dual

    min_a  1/2 a' Q a   s.t.  0 <= a_i <= 1/(nu n),  sum(a) = 1,

with ``Q = X X'`` (linear kernel), via SLSQP — perfectly adequate at the
paper's sample sizes. The anomaly score of ``x`` is ``rho - w.x`` (distance
below the separating hyperplane; higher = more anomalous).

Preprocessing scales each column by its training standard deviation but
does **not** center: the linear one-class SVM separates the data from the
origin, so centering (which puts the origin in the middle of the training
cloud) would make the problem degenerate. This mirrors the scale-to-range
preprocessing conventional with libSVM.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.core.imputation import Preprocessor
from repro.core.types import AnomalyDetector
from repro.data.schema import FeatureSchema
from repro.utils.exceptions import DataError, FitError, NotFittedError
from repro.utils.validation import check_2d


class OneClassSVM(AnomalyDetector):
    """Linear nu-one-class SVM.

    Parameters
    ----------
    nu:
        Upper bound on the training outlier fraction / lower bound on the
        support-vector fraction; in (0, 1].
    """

    def __init__(self, nu: float = 0.1) -> None:
        if not 0.0 < nu <= 1.0:
            raise DataError(f"nu must lie in (0, 1]; got {nu}")
        self.nu = float(nu)
        self._pre: "Preprocessor | None" = None
        self._scale: "np.ndarray | None" = None
        self.coef_: "np.ndarray | None" = None
        self.rho_: float = 0.0

    def _prepare(self, x: np.ndarray) -> np.ndarray:
        """Impute then scale (no centering; see module docstring)."""
        out = self._pre.transform(x)
        return out / self._scale

    def fit(self, x_train: np.ndarray, schema: FeatureSchema) -> "OneClassSVM":
        x_train = check_2d(x_train, "x_train")
        if x_train.shape[0] < 2:
            raise DataError("one-class SVM needs at least 2 training samples")
        self._pre = Preprocessor(schema, standardize=False).fit(x_train)
        filled = self._pre.transform(x_train)
        sd = filled.std(axis=0)
        self._scale = np.where(sd > 0, sd, 1.0)
        x = filled / self._scale
        n = x.shape[0]
        upper = 1.0 / (self.nu * n)
        q = x @ x.T

        alpha0 = np.full(n, 1.0 / n)
        res = optimize.minimize(
            lambda a: 0.5 * a @ q @ a,
            alpha0,
            jac=lambda a: q @ a,
            bounds=[(0.0, upper)] * n,
            constraints=[{"type": "eq", "fun": lambda a: a.sum() - 1.0,
                          "jac": lambda a: np.ones_like(a)}],
            method="SLSQP",
            options={"maxiter": 500, "ftol": 1e-10},
        )
        if not res.success and not np.isfinite(res.fun):
            raise FitError(f"one-class SVM dual failed to converge: {res.message}")
        alpha = np.clip(res.x, 0.0, upper)
        self.coef_ = x.T @ alpha
        # rho from margin support vectors (0 < alpha < upper); fall back to
        # the median decision value of all support vectors.
        decision = x @ self.coef_
        margin = (alpha > 1e-8 * upper) & (alpha < upper * (1 - 1e-8))
        if margin.any():
            self.rho_ = float(decision[margin].mean())
        else:
            sv = alpha > 1e-8 * upper
            self.rho_ = float(np.median(decision[sv])) if sv.any() else float(np.median(decision))
        return self

    def score(self, x_test: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise NotFittedError("OneClassSVM is not fitted; call fit() first")
        x = self._prepare(check_2d(x_test, "x_test"))
        return self.rho_ - x @ self.coef_
