"""Competing anomaly detectors the paper compares FRaC against."""

from repro.baselines.lof import LOFDetector
from repro.baselines.marginal import MahalanobisDetector, ZScoreDetector
from repro.baselines.ocsvm import OneClassSVM

__all__ = ["LOFDetector", "OneClassSVM", "ZScoreDetector", "MahalanobisDetector"]
