"""Local Outlier Factor (Breunig et al., SIGMOD 2000).

The paper cites LOF as a top competing anomaly-detection method that FRaC
was shown to beat on high-dimensional biomedical data (its robustness to
irrelevant variables is worse). Implemented densely: with the paper's
sample sizes (tens to hundreds), the full pairwise distance matrix is tiny.

Scores follow the semi-supervised protocol used for FRaC: neighbours are
drawn from the *training* (normal) population only, and a test sample's
LOF compares its local density against its training neighbours'.
"""

from __future__ import annotations

import numpy as np

from repro.core.imputation import Preprocessor
from repro.core.types import AnomalyDetector
from repro.data.schema import FeatureSchema
from repro.utils.exceptions import DataError, NotFittedError
from repro.utils.validation import check_2d


def _pairwise_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape ``(len(a), len(b))``."""
    aa = (a * a).sum(axis=1)[:, None]
    bb = (b * b).sum(axis=1)[None, :]
    return np.maximum(aa + bb - 2.0 * (a @ b.T), 0.0)


class LOFDetector(AnomalyDetector):
    """Local Outlier Factor over the normal training population.

    Parameters
    ----------
    n_neighbors:
        The ``MinPts`` parameter (capped at ``n_train - 1`` at fit time).
    """

    def __init__(self, n_neighbors: int = 10) -> None:
        if n_neighbors < 1:
            raise DataError(f"n_neighbors must be >= 1; got {n_neighbors}")
        self.n_neighbors = int(n_neighbors)
        self._pre: "Preprocessor | None" = None
        self._x: "np.ndarray | None" = None
        self._k: int = 0
        self._train_kdist: "np.ndarray | None" = None
        self._train_lrd: "np.ndarray | None" = None

    def fit(self, x_train: np.ndarray, schema: FeatureSchema) -> "LOFDetector":
        x_train = check_2d(x_train, "x_train")
        if x_train.shape[0] < 2:
            raise DataError("LOF needs at least 2 training samples")
        self._pre = Preprocessor(schema, standardize=True).fit(x_train)
        x = self._pre.transform(x_train)
        n = x.shape[0]
        k = min(self.n_neighbors, n - 1)
        self._k = k

        d = np.sqrt(_pairwise_sq_dists(x, x))
        np.fill_diagonal(d, np.inf)
        order = np.argsort(d, axis=1)
        knn = order[:, :k]  # (n, k) neighbour indices
        kdist = d[np.arange(n)[:, None], knn][:, -1]  # k-distance per point

        # reach-dist_k(p, o) = max(k-distance(o), d(p, o))
        reach = np.maximum(kdist[knn], d[np.arange(n)[:, None], knn])
        lrd = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)

        self._x = x
        self._train_kdist = kdist
        self._train_lrd = lrd
        return self

    def score(self, x_test: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise NotFittedError("LOFDetector is not fitted; call fit() first")
        x = self._pre.transform(check_2d(x_test, "x_test"))
        d = np.sqrt(_pairwise_sq_dists(x, self._x))
        order = np.argsort(d, axis=1)
        knn = order[:, : self._k]
        rows = np.arange(x.shape[0])[:, None]
        reach = np.maximum(self._train_kdist[knn], d[rows, knn])
        lrd = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)
        # LOF = mean neighbour lrd / own lrd; > 1 means locally sparser.
        return self._train_lrd[knn].mean(axis=1) / lrd
