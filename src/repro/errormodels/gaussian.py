"""Gaussian residual error model for continuous features.

The paper: "Error models simply fit a Gaussian to the error distribution,
as again there is insufficient data to accurately learn a more detailed
model." The residual is ``truth - prediction``; its fitted density is
evaluated at the test residual, and the surprisal is the negative log of
that density (a *differential* surprisal, pairing with differential
entropy in the NS score).
"""

from __future__ import annotations

import numpy as np

from repro.errormodels.base import ErrorModel
from repro.utils.exceptions import FitError
from repro.utils.validation import check_consistent_length, check_fitted

_LOG_2PI = float(np.log(2.0 * np.pi))

#: Floor on the fitted residual scale. A near-zero sigma (a feature that is
#: predicted essentially perfectly in CV) would make any test deviation
#: carry unbounded surprisal; the floor caps a single feature's influence,
#: mirroring the regularized error models of the original FRaC release.
SIGMA_FLOOR = 1e-6


class GaussianErrorModel(ErrorModel):
    """``truth - prediction ~ N(mu, sigma^2)``, fit by moments."""

    def __init__(self, sigma_floor: float = SIGMA_FLOOR) -> None:
        if sigma_floor <= 0:
            raise ValueError(f"sigma_floor must be positive; got {sigma_floor}")
        self.sigma_floor = float(sigma_floor)
        self.mu_: "float | None" = None
        self.sigma_: "float | None" = None

    def fit(self, predictions: np.ndarray, truths: np.ndarray) -> "GaussianErrorModel":
        predictions = np.asarray(predictions, dtype=np.float64).ravel()
        truths = np.asarray(truths, dtype=np.float64).ravel()
        check_consistent_length(predictions, truths)
        if predictions.size == 0:
            raise FitError("cannot fit a Gaussian error model on zero holdout pairs")
        resid = truths - predictions
        if not np.isfinite(resid).all():
            raise FitError("holdout residuals contain non-finite values")
        self.mu_ = float(resid.mean())
        self.sigma_ = float(max(resid.std(), self.sigma_floor))
        return self

    def surprisal(self, predictions: np.ndarray, truths: np.ndarray) -> np.ndarray:
        check_fitted(self, "sigma_")
        predictions = np.asarray(predictions, dtype=np.float64)
        truths = np.asarray(truths, dtype=np.float64)
        z = (truths - predictions - self.mu_) / self.sigma_
        # Positive by construction: fit() floors sigma_ at sigma_floor,
        # which __init__ validates to be > 0.
        return 0.5 * z * z + np.log(self.sigma_) + 0.5 * _LOG_2PI  # fraclint: disable=FRL003

    @property
    def model_nbytes(self) -> int:
        return 16
