"""Gaussian residual error model for continuous features.

The paper: "Error models simply fit a Gaussian to the error distribution,
as again there is insufficient data to accurately learn a more detailed
model." The residual is ``truth - prediction``; its fitted density is
evaluated at the test residual, and the surprisal is the negative log of
that density (a *differential* surprisal, pairing with differential
entropy in the NS score).
"""

from __future__ import annotations

import numpy as np

from repro.errormodels.base import ErrorModel
from repro.utils.exceptions import FitError
from repro.utils.validation import check_consistent_length, check_fitted

_LOG_2PI = float(np.log(2.0 * np.pi))

#: Floor on the fitted residual scale. A near-zero sigma (a feature that is
#: predicted essentially perfectly in CV) would make any test deviation
#: carry unbounded surprisal; the floor caps a single feature's influence,
#: mirroring the regularized error models of the original FRaC release.
SIGMA_FLOOR = 1e-6


class GaussianErrorModel(ErrorModel):
    """``truth - prediction ~ N(mu, sigma^2)``, fit by moments."""

    def __init__(self, sigma_floor: float = SIGMA_FLOOR) -> None:
        if sigma_floor <= 0:
            raise ValueError(f"sigma_floor must be positive; got {sigma_floor}")
        self.sigma_floor = float(sigma_floor)
        self.mu_: "float | None" = None
        self.sigma_: "float | None" = None

    def fit(self, predictions: np.ndarray, truths: np.ndarray) -> "GaussianErrorModel":
        predictions = np.asarray(predictions, dtype=np.float64).ravel()
        truths = np.asarray(truths, dtype=np.float64).ravel()
        check_consistent_length(predictions, truths)
        if predictions.size == 0:
            raise FitError("cannot fit a Gaussian error model on zero holdout pairs")
        resid = truths - predictions
        if not np.isfinite(resid).all():
            raise FitError("holdout residuals contain non-finite values")
        self.mu_ = float(resid.mean())
        self.sigma_ = float(max(resid.std(), self.sigma_floor))
        return self

    def surprisal(self, predictions: np.ndarray, truths: np.ndarray) -> np.ndarray:
        check_fitted(self, "sigma_")
        predictions = np.asarray(predictions, dtype=np.float64)
        truths = np.asarray(truths, dtype=np.float64)
        z = (truths - predictions - self.mu_) / self.sigma_
        # Positive by construction: fit() floors sigma_ at sigma_floor,
        # which __init__ validates to be > 0.
        return 0.5 * z * z + np.log(self.sigma_) + 0.5 * _LOG_2PI  # fraclint: disable=FRL003

    @classmethod
    def batch_fit(
        cls,
        predictions: np.ndarray,
        truths: np.ndarray,
        *,
        sigma_floor: float = SIGMA_FLOOR,
    ) -> "list[GaussianErrorModel]":
        """Fit one model per row of stacked ``(k, n)`` holdout pairs.

        Bitwise equal to fitting each row through :meth:`fit`: the
        residual subtraction is elementwise, and contiguous-row
        ``mean(axis=1)`` / ``std(axis=1)`` replay each row's 1-D pairwise
        reductions. Any non-finite residual raises the same
        :class:`FitError` the scalar path would, for the whole batch.
        """
        predictions = np.ascontiguousarray(np.asarray(predictions, dtype=np.float64))
        truths = np.ascontiguousarray(np.asarray(truths, dtype=np.float64))
        if predictions.shape != truths.shape or predictions.ndim != 2:
            raise FitError(
                f"batch_fit needs matching (k, n) stacks; got "
                f"{predictions.shape} vs {truths.shape}"
            )
        if predictions.shape[1] == 0:
            raise FitError("cannot fit a Gaussian error model on zero holdout pairs")
        resid = truths - predictions
        if not np.isfinite(resid).all():
            raise FitError("holdout residuals contain non-finite values")
        mus = resid.mean(axis=1)
        sigmas = resid.std(axis=1)
        models = []
        for mu, sigma in zip(mus, sigmas):  # fraclint: disable=FRL015 -- O(k) attribute assembly; the O(k*n) reductions above are batched
            model = cls(sigma_floor=sigma_floor)
            model.mu_ = float(mu)
            model.sigma_ = float(max(float(sigma), model.sigma_floor))
            models.append(model)
        return models

    @classmethod
    def batch_mean_surprisal(
        cls,
        models: "list[GaussianErrorModel]",
        predictions: np.ndarray,
        truths: np.ndarray,
    ) -> np.ndarray:
        """Row-wise mean surprisal (the CV calibration figure).

        Bitwise equal to ``model.surprisal(p_row, t_row).mean()`` per
        member: broadcasting per-model column scalars keeps every
        elementwise operand identical, the row mean runs the contiguous
        1-D pairwise kernel, and ``np.log(sigma)`` stays a per-model
        scalar call exactly as in :meth:`batch_surprisal`.
        """
        for model in models:
            check_fitted(model, "sigma_")
        predictions = np.ascontiguousarray(np.asarray(predictions, dtype=np.float64))
        truths = np.ascontiguousarray(np.asarray(truths, dtype=np.float64))
        mu = np.array([model.mu_ for model in models])
        sigma = np.array([model.sigma_ for model in models])
        log_sigma = np.array([np.log(model.sigma_) for model in models])  # fraclint: disable=FRL003 -- sigma_ floored positive by fit()
        z = (truths - predictions - mu[:, None]) / sigma[:, None]
        s = 0.5 * z * z + log_sigma[:, None] + 0.5 * _LOG_2PI
        return s.mean(axis=1)

    @classmethod
    def batch_surprisal(
        cls, models: "list[GaussianErrorModel]", predictions: np.ndarray, truths: np.ndarray
    ) -> np.ndarray:
        """Vectorized column-wise surprisal, bitwise equal to the scalar path.

        Broadcasting a per-model row vector through the elementwise ops
        replays the scalar path's float sequence exactly (each element sees
        the same operands in the same order). The one op that is *not*
        broadcast is ``np.log(sigma)``: numpy's SIMD log over a vector of
        sigmas is not guaranteed bit-identical to the scalar ``np.log``
        the per-model path calls, so the log of each sigma is taken as a
        scalar and only then assembled into the row.
        """
        for model in models:
            check_fitted(model, "sigma_")
        predictions = np.asarray(predictions, dtype=np.float64)
        truths = np.asarray(truths, dtype=np.float64)
        mu = np.array([model.mu_ for model in models])
        sigma = np.array([model.sigma_ for model in models])
        log_sigma = np.array([np.log(model.sigma_) for model in models])  # fraclint: disable=FRL003 -- sigma_ floored positive by fit()
        z = (truths - predictions - mu) / sigma
        return 0.5 * z * z + log_sigma + 0.5 * _LOG_2PI

    @property
    def model_nbytes(self) -> int:
        return 16
