"""Gaussian kernel density estimation (Rosenblatt 1956).

The paper estimates the differential entropy of a continuous feature by
"fitting a Gaussian kernel density estimator to the feature values over the
training set, and computing the differential entropy of f(x)" (§II-A). We
use Silverman's rule-of-thumb bandwidth and estimate the entropy by the
resubstitution (empirical-mean) estimator
``H ~= -(1/n) sum_i ln f_hat(x_i)``, which converges to the differential
entropy of the estimated density.
"""

from __future__ import annotations

import numpy as np

from repro.utils.exceptions import FitError
from repro.utils.validation import check_fitted

_LOG_2PI = float(np.log(2.0 * np.pi))

#: Bandwidth floor, for degenerate (constant or near-constant) samples.
BANDWIDTH_FLOOR = 1e-9


def _quartile(sorted_values: np.ndarray, q: float) -> float:
    """``np.percentile(values, 100 * q)`` (linear method), bit for bit.

    Replays numpy's virtual-index arithmetic and its two-branch lerp on
    pre-sorted data, skipping the quantile dispatch machinery — the
    engine computes two quartiles per trained feature, and the dispatch
    costs an order of magnitude more than the order statistic itself.
    """
    n = sorted_values.size
    virtual = q * (n - 1)
    lo = int(virtual)
    a = float(sorted_values[lo])
    b = float(sorted_values[min(lo + 1, n - 1)])
    t = virtual - lo
    if t >= 0.5:
        return b - (b - a) * (1.0 - t)
    return a + (b - a) * t


def silverman_bandwidth(values: np.ndarray) -> float:
    """Silverman's rule of thumb: ``0.9 * min(sd, IQR/1.34) * n^{-1/5}``."""
    values = np.asarray(values, dtype=np.float64).ravel()
    n = values.size
    if n < 2:
        return BANDWIDTH_FLOOR
    sd = float(values.std())
    ordered = np.sort(values)
    iqr = _quartile(ordered, 0.75) - _quartile(ordered, 0.25)
    spread_candidates = [s for s in (sd, iqr / 1.34) if s > 0]
    if not spread_candidates:
        return BANDWIDTH_FLOOR
    return max(0.9 * min(spread_candidates) * n ** (-0.2), BANDWIDTH_FLOOR)


def batch_silverman_bandwidth(samples: np.ndarray) -> np.ndarray:
    """Row-wise Silverman bandwidths, bit-equal to the scalar rule.

    Rows must be finite (the scalar path's finiteness compaction is a
    no-op then, and a contiguous row runs the same reduction kernels as
    the compacted copy). The spread statistics batch — a contiguous-row
    ``std(axis=1)`` replays each row's 1-D pairwise ``std()`` and sorting
    is exact — while the quartile lerp and the floor/min scalar
    arithmetic replay per row.
    """
    samples = np.ascontiguousarray(np.asarray(samples, dtype=np.float64))
    k, n = samples.shape
    if n < 2:
        return np.full(k, BANDWIDTH_FLOOR)
    sds = samples.std(axis=1)
    ordered = np.sort(samples, axis=1)
    out = np.empty(k)
    for i in range(k):  # fraclint: disable=FRL015 -- O(k) float scalar arithmetic; the O(k*n) reductions above are batched
        sd = float(sds[i])
        iqr = _quartile(ordered[i], 0.75) - _quartile(ordered[i], 0.25)
        spread_candidates = [s for s in (sd, iqr / 1.34) if s > 0]
        if not spread_candidates:
            out[i] = BANDWIDTH_FLOOR
        else:
            out[i] = max(0.9 * min(spread_candidates) * n ** (-0.2), BANDWIDTH_FLOOR)
    return out


def batch_entropy(samples: np.ndarray, *, chunk_bytes: int = 1 << 25) -> np.ndarray:
    """Row-wise resubstitution entropies, one KDE per row of ``samples``.

    Bitwise equal to ``GaussianKDE().fit(row).entropy()`` for each
    (finite) row: elementwise kernel evaluation is position-independent,
    and the logsumexp/mean reductions run over the contiguous last axis,
    which replays the per-row 2-D reductions of the scalar path.  The
    ``np.log`` normalizer stays a per-row *scalar* call — the scalar
    path's ``np.log(python float)`` is not the SIMD array log.  Rows are
    chunked so the (chunk, n, n) kernel tensor stays under
    ``chunk_bytes``.
    """
    samples = np.ascontiguousarray(np.asarray(samples, dtype=np.float64))
    k, n = samples.shape
    if n == 0:
        raise FitError("cannot fit a KDE on zero finite values")
    out = np.empty(k)
    if k == 0:
        return out
    h = batch_silverman_bandwidth(samples)
    log_norm = np.array([np.log(n * hi) for hi in h])  # fraclint: disable=FRL003,FRL015 -- per-row scalar np.log replays logpdf's normalizer bit for bit (h floored positive)
    rows_per_chunk = max(1, int(chunk_bytes // max(n * n * 8, 1)))
    for lo in range(0, k, rows_per_chunk):  # fraclint: disable=FRL015 -- O(k/chunk) iterations; every chunk runs fully vectorized, the loop only bounds the (chunk, n, n) tensor's peak memory
        hi = min(lo + rows_per_chunk, k)
        s = samples[lo:hi]
        z = (s[:, :, None] - s[:, None, :]) / h[lo:hi, None, None]
        log_kernels = -0.5 * z * z
        m = log_kernels.max(axis=2, keepdims=True)
        lse = m[:, :, 0] + np.log(np.exp(log_kernels - m).sum(axis=2))
        logpdf = lse - log_norm[lo:hi, None] - 0.5 * _LOG_2PI
        out[lo:hi] = -logpdf.mean(axis=1)
    return out


class GaussianKDE:
    """1-D Gaussian kernel density estimate.

    Parameters
    ----------
    bandwidth:
        Kernel standard deviation; ``None`` selects Silverman's rule at fit
        time.
    """

    def __init__(self, bandwidth: "float | None" = None) -> None:
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive; got {bandwidth}")
        self.bandwidth = bandwidth
        self.samples_: "np.ndarray | None" = None
        self.bandwidth_: "float | None" = None

    def fit(self, values: np.ndarray) -> "GaussianKDE":
        values = np.asarray(values, dtype=np.float64).ravel()
        values = values[np.isfinite(values)]
        if values.size == 0:
            raise FitError("cannot fit a KDE on zero finite values")
        self.samples_ = values
        self.bandwidth_ = (
            self.bandwidth if self.bandwidth is not None else silverman_bandwidth(values)
        )
        return self

    def logpdf(self, x: np.ndarray) -> np.ndarray:
        """Log density at query points (vectorized; O(n_query * n_train))."""
        check_fitted(self, "samples_")
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        h = self.bandwidth_
        z = (x[:, None] - self.samples_[None, :]) / h
        # logsumexp over kernels, numerically stable.
        log_kernels = -0.5 * z * z
        m = log_kernels.max(axis=1, keepdims=True)
        lse = m[:, 0] + np.log(np.exp(log_kernels - m).sum(axis=1))
        # Positive by construction: fit() rejects empty samples (size >= 1)
        # and bandwidth_ is validated > 0 or floored at BANDWIDTH_FLOOR.
        return lse - np.log(self.samples_.size * h) - 0.5 * _LOG_2PI  # fraclint: disable=FRL003

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return np.exp(self.logpdf(x))

    def entropy(self) -> float:
        """Resubstitution estimate of the differential entropy (nats)."""
        check_fitted(self, "samples_")
        return float(-self.logpdf(self.samples_).mean())
