"""Error-model interface.

FRaC converts a predictor's output into a probability of the *observed*
value via an error model estimated from cross-validation (prediction,
truth) pairs: a Gaussian over residuals for continuous features, a
confusion matrix for categorical ones (paper §I-A1). The quantity FRaC
consumes is the *surprisal* ``-log P(truth | prediction)``; natural
logarithms are used everywhere in this library (entropies included), so
surprisal and entropy subtract coherently in the NS score.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class ErrorModel(ABC):
    """Estimates ``P(observed value | predicted value)``."""

    @abstractmethod
    def fit(self, predictions: np.ndarray, truths: np.ndarray) -> "ErrorModel":
        """Fit from holdout (prediction, truth) pairs."""

    @abstractmethod
    def surprisal(self, predictions: np.ndarray, truths: np.ndarray) -> np.ndarray:
        """``-ln P(truth_i | prediction_i)`` per element (vectorized)."""

    @classmethod
    def batch_surprisal(
        cls, models: "list[ErrorModel]", predictions: np.ndarray, truths: np.ndarray
    ) -> np.ndarray:
        """Column-wise surprisal for a group of fitted models.

        ``predictions`` and ``truths`` are ``(n, k)`` matrices whose column
        ``j`` belongs to ``models[j]``. The contract is **bitwise**: column
        ``j`` of the result equals ``models[j].surprisal(predictions[:, j],
        truths[:, j])`` exactly (``np.array_equal``). This default replays
        the scalar call per column — the safe fallback for any error model;
        subclasses override it only where the math vectorizes without
        moving a bit (see :class:`~repro.errormodels.gaussian.
        GaussianErrorModel` and :class:`~repro.errormodels.confusion.
        ConfusionErrorModel`).
        """
        out = np.empty(predictions.shape, dtype=np.float64)
        for j, model in enumerate(models):
            out[:, j] = model.surprisal(predictions[:, j], truths[:, j])
        return out

    @property
    def model_nbytes(self) -> int:
        """Approximate bytes of fitted state (resource-model hook)."""
        return 0
