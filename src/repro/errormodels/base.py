"""Error-model interface.

FRaC converts a predictor's output into a probability of the *observed*
value via an error model estimated from cross-validation (prediction,
truth) pairs: a Gaussian over residuals for continuous features, a
confusion matrix for categorical ones (paper §I-A1). The quantity FRaC
consumes is the *surprisal* ``-log P(truth | prediction)``; natural
logarithms are used everywhere in this library (entropies included), so
surprisal and entropy subtract coherently in the NS score.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class ErrorModel(ABC):
    """Estimates ``P(observed value | predicted value)``."""

    @abstractmethod
    def fit(self, predictions: np.ndarray, truths: np.ndarray) -> "ErrorModel":
        """Fit from holdout (prediction, truth) pairs."""

    @abstractmethod
    def surprisal(self, predictions: np.ndarray, truths: np.ndarray) -> np.ndarray:
        """``-ln P(truth_i | prediction_i)`` per element (vectorized)."""

    @property
    def model_nbytes(self) -> int:
        """Approximate bytes of fitted state (resource-model hook)."""
        return 0
