"""Feature entropy estimation (the ``H(f_i)`` term of NS, and the ranking
criterion of entropy filtering).

Discrete features use the plug-in (maximum likelihood) estimator over
training-set frequencies; continuous features use the differential entropy
of a Gaussian KDE (see :mod:`repro.errormodels.kde`). All entropies are in
nats, matching the natural-log surprisals of the error models.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import FeatureSchema, FeatureSpec
from repro.errormodels.kde import GaussianKDE
from repro.utils.exceptions import DataError


def discrete_entropy(values: np.ndarray, arity: "int | None" = None) -> float:
    """Plug-in Shannon entropy (nats) of integer-coded values.

    NaN entries (missing values) are ignored. ``arity`` only validates the
    code range; zero-frequency categories contribute nothing either way.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    values = values[~np.isnan(values)]
    if values.size == 0:
        raise DataError("cannot estimate entropy from zero observed values")
    codes = np.rint(values).astype(np.intp)
    if arity is not None and codes.size and (codes.min() < 0 or codes.max() >= arity):
        raise DataError(f"codes outside [0, {arity})")
    _, counts = np.unique(codes, return_counts=True)
    p = counts / counts.sum()
    # Positive by construction: np.unique(return_counts=True) only reports
    # observed categories, so every count (and frequency p) is >= 1/n > 0.
    return float(-(p * np.log(p)).sum())  # fraclint: disable=FRL003


def differential_entropy(values: np.ndarray, bandwidth: "float | None" = None) -> float:
    """KDE-based differential entropy (nats) of real values (paper §II-A)."""
    return GaussianKDE(bandwidth=bandwidth).fit(values).entropy()


def feature_entropy(column: np.ndarray, spec: FeatureSpec) -> float:
    """Entropy of one feature column according to its schema kind."""
    if spec.is_categorical:
        return discrete_entropy(column, arity=spec.arity)
    return differential_entropy(column)


def dataset_entropies(x: np.ndarray, schema: FeatureSchema) -> np.ndarray:
    """Per-feature entropies for a whole (training) matrix."""
    if x.shape[1] != len(schema):
        raise DataError(
            f"matrix has {x.shape[1]} columns but schema describes {len(schema)}"
        )
    return np.array([feature_entropy(x[:, j], schema[j]) for j in range(len(schema))])
