"""Confusion-matrix error model for categorical features.

Counts holdout (prediction, truth) pairs into an ``arity x arity`` matrix
with additive (Laplace) smoothing; ``P(truth | prediction)`` is the
row-normalized count. Smoothing keeps every cell strictly positive, so
surprisal is always finite — an unseen (prediction, truth) combination is
*very* surprising, not infinitely so, matching the original FRaC release.
"""

from __future__ import annotations

import numpy as np

from repro.errormodels.base import ErrorModel
from repro.utils.exceptions import DataError, FitError
from repro.utils.validation import check_consistent_length, check_fitted


class ConfusionErrorModel(ErrorModel):
    """Smoothed confusion matrix over ``arity`` categories.

    Parameters
    ----------
    arity:
        Number of categories of the modelled feature.
    smoothing:
        Additive pseudo-count per cell (must be positive).
    """

    def __init__(self, arity: int, smoothing: float = 1.0) -> None:
        if arity < 2:
            raise DataError(f"arity must be >= 2; got {arity}")
        if smoothing <= 0:
            raise DataError(f"smoothing must be positive; got {smoothing}")
        self.arity = int(arity)
        self.smoothing = float(smoothing)
        self.log_prob_: "np.ndarray | None" = None  # (arity, arity): [pred, truth]
        self.counts_: "np.ndarray | None" = None

    def _codes(self, values: np.ndarray, name: str) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64).ravel()
        codes = np.rint(arr).astype(np.intp)
        # A prediction is produced by a classifier over the same codes, so
        # out-of-range values indicate a wiring bug, not bad data.
        if codes.size and (codes.min() < 0 or codes.max() >= self.arity):
            raise DataError(f"{name} contains codes outside [0, {self.arity})")
        return codes

    def fit(self, predictions: np.ndarray, truths: np.ndarray) -> "ConfusionErrorModel":
        pred = self._codes(predictions, "predictions")
        true = self._codes(truths, "truths")
        check_consistent_length(pred, true)
        if pred.size == 0:
            raise FitError("cannot fit a confusion error model on zero holdout pairs")
        counts = np.zeros((self.arity, self.arity), dtype=np.float64)
        np.add.at(counts, (pred, true), 1.0)
        self.counts_ = counts
        smoothed = counts + self.smoothing
        # Positive by construction: every cell is counts + smoothing with
        # smoothing validated > 0 in __init__, so each ratio is in (0, 1].
        self.log_prob_ = np.log(smoothed / smoothed.sum(axis=1, keepdims=True))  # fraclint: disable=FRL003
        return self

    def surprisal(self, predictions: np.ndarray, truths: np.ndarray) -> np.ndarray:
        check_fitted(self, "log_prob_")
        pred = self._codes(predictions, "predictions")
        true = self._codes(truths, "truths")
        return -self.log_prob_[pred, true]

    @classmethod
    def batch_surprisal(
        cls, models: "list[ConfusionErrorModel]", predictions: np.ndarray, truths: np.ndarray
    ) -> np.ndarray:
        """Vectorized column-wise surprisal, bitwise equal to the scalar path.

        Surprisal here is a pure table gather (code rounding + advanced
        indexing, no float arithmetic), so stacking the ``log_prob_``
        tables and gathering once is trivially bit-identical. Mixed-arity
        groups fall back to the per-column base implementation — their
        tables cannot stack.
        """
        if not models or any(m.arity != models[0].arity for m in models):
            return super().batch_surprisal(models, predictions, truths)
        for model in models:
            check_fitted(model, "log_prob_")
        arity = models[0].arity
        pred = np.rint(np.asarray(predictions, dtype=np.float64)).astype(np.intp)
        true = np.rint(np.asarray(truths, dtype=np.float64)).astype(np.intp)
        for name, codes in (("predictions", pred), ("truths", true)):
            if codes.size and (codes.min() < 0 or codes.max() >= arity):
                raise DataError(f"{name} contains codes outside [0, {arity})")
        tables = np.stack([model.log_prob_ for model in models])  # (k, arity, arity)
        return -tables[np.arange(len(models)), pred, true]

    @property
    def model_nbytes(self) -> int:
        return 0 if self.log_prob_ is None else int(self.log_prob_.nbytes)
