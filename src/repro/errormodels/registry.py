"""Name-based error-model construction.

Fitted artifacts store an error model's short serialized name
(``"gaussian"``, ``"confusion"``) so that persisted studies are
reloadable by name alone; this registry is the single source of that
mapping, mirroring :mod:`repro.learners.registry`. fraclint's FRL012
(registry-completeness) checks, cross-module, that every concrete
:class:`~repro.errormodels.base.ErrorModel` subclass appears here — an
unregistered model would fit fine but fail to round-trip through
persistence.
"""

from __future__ import annotations

from typing import Callable

from repro.errormodels.base import ErrorModel
from repro.errormodels.confusion import ConfusionErrorModel
from repro.errormodels.gaussian import GaussianErrorModel

__all__ = [
    "ERROR_MODELS",
    "error_model_constructor",
    "error_model_name",
    "make_error_model",
]

ERROR_MODELS: dict[str, Callable[..., ErrorModel]] = {
    "gaussian": GaussianErrorModel,
    "confusion": ConfusionErrorModel,
}


def error_model_constructor(name: str) -> Callable[..., ErrorModel]:
    """The registered constructor for ``name`` (ValueError if unknown)."""
    try:
        return ERROR_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown error model {name!r}; available: {sorted(ERROR_MODELS)}"
        ) from None


def error_model_name(model: ErrorModel) -> str:
    """The serialized name of ``model``'s class (ValueError if unregistered).

    The round-trip contract FRL012 enforces statically, checked here
    dynamically: ``error_model_constructor(error_model_name(m))`` is
    ``type(m)`` for every registered model.
    """
    for name, ctor in ERROR_MODELS.items():
        if type(model) is ctor:
            return name
    raise ValueError(
        f"{type(model).__name__} is not registered in "
        f"repro.errormodels.registry; available: {sorted(ERROR_MODELS)}"
    )


def make_error_model(name: str, **params) -> ErrorModel:
    """Construct the error model registered under ``name``."""
    return error_model_constructor(name)(**params)
