"""Error models and entropy estimators for the NS score."""

from repro.errormodels.base import ErrorModel
from repro.errormodels.confusion import ConfusionErrorModel
from repro.errormodels.entropy import (
    dataset_entropies,
    differential_entropy,
    discrete_entropy,
    feature_entropy,
)
from repro.errormodels.gaussian import GaussianErrorModel
from repro.errormodels.kde import GaussianKDE, silverman_bandwidth
from repro.errormodels.registry import (
    ERROR_MODELS,
    error_model_constructor,
    error_model_name,
    make_error_model,
)

__all__ = [
    "ErrorModel",
    "GaussianErrorModel",
    "ConfusionErrorModel",
    "ERROR_MODELS",
    "error_model_constructor",
    "error_model_name",
    "make_error_model",
    "GaussianKDE",
    "silverman_bandwidth",
    "discrete_entropy",
    "differential_entropy",
    "feature_entropy",
    "dataset_entropies",
]
