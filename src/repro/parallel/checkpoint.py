"""Append-only on-disk checkpoint journal for task batches.

A 170k-feature SNP training run is hours of work; if the process dies at
item 169,999 the journal is what separates "restart from where we were"
from "start over". Completed results stream to an append-only file as
``(key, value)`` pickle records, one per task, flushed as they complete;
:func:`repro.parallel.executor.run_tasks` replays the journal on resume
and re-executes only the missing keys.

Format (``repro-checkpoint-v1``): a pickled header record followed by
pickled ``(key, value)`` tuples. Append-only writing means a crash can at
worst truncate the final record; :meth:`CheckpointJournal.open` replays
the file, keeps every intact record, and truncates the torn tail before
appending, so a journal survives arbitrarily-timed kills. Duplicate keys
resolve last-write-wins (re-running an item overwrites its entry).

Keys must be picklable and hashable; the engine keys feature work by
``(feature_id, slot, seed)`` (:func:`repro.core.engine.feature_task_key`),
which pins the RNG stream and therefore the result — equal keys imply
bit-identical values, the idempotence resume relies on. Values are
arbitrary picklables (the engine journals ``(FeatureModel, TaskCost)``
pairs, or ``None`` for under-observed features).

Security note: like :mod:`repro.persistence`, loading executes pickle;
only resume from journals you wrote.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any

from repro.telemetry.runtime import get_bus
from repro.utils.exceptions import ReproError

FORMAT = "repro-checkpoint-v1"

#: Header sentinel key; cannot collide with task keys because task keys are
#: supplied per-record after it.
_HEADER_KEY = "__repro_checkpoint__"


class CheckpointError(ReproError):
    """Raised when a journal cannot be read or written safely."""


class CheckpointJournal:
    """An append-only journal of completed task results.

    Usable as a context manager; opening is lazy, so a journal object can
    be handed to :func:`repro.parallel.executor.run_tasks` unopened.

    Attributes
    ----------
    preloaded:
        Number of entries replayed from disk when the journal was opened
        (0 for a fresh journal).
    appended:
        Number of entries written through this object so far.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._fh: Any = None
        self._entries: "dict[Any, Any] | None" = None
        self.preloaded = 0
        self.appended = 0

    # -- lifecycle ---------------------------------------------------------
    def open(self) -> "CheckpointJournal":
        """Replay existing records, drop any torn tail, position for append."""
        if self._fh is not None:
            return self
        exists = self.path.exists()
        entries, valid_bytes = self._replay() if exists else ({}, 0)
        self._fh = self.path.open("r+b" if exists else "wb")
        self._fh.truncate(valid_bytes)
        self._fh.seek(valid_bytes)
        if valid_bytes == 0:
            pickle.dump((_HEADER_KEY, FORMAT), self._fh, protocol=pickle.HIGHEST_PROTOCOL)
            self._fh.flush()
        self._entries = entries
        self.preloaded = len(entries)
        bus = get_bus()
        if bus is not None:
            bus.metrics.counter("checkpoint.preloaded").inc(self.preloaded)
        return self

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self.open()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- reading -----------------------------------------------------------
    def entries(self) -> dict:
        """Key -> journaled value for every completed item on record."""
        self.open()
        return dict(self._entries or {})

    def __contains__(self, key: Any) -> bool:
        self.open()
        return key in (self._entries or {})

    def __len__(self) -> int:
        self.open()
        return len(self._entries or {})

    def _replay(self) -> "tuple[dict, int]":
        """Read every intact record; return (entries, valid byte length)."""
        entries: dict[Any, Any] = {}
        valid = 0
        with self.path.open("rb") as fh:
            try:
                header = pickle.load(fh)
            except EOFError:
                return {}, 0  # empty file: treat as fresh
            except Exception as exc:
                raise CheckpointError(
                    f"{self.path} is not a checkpoint journal: {exc}"
                ) from exc
            if (
                not isinstance(header, tuple)
                or len(header) != 2
                or header[0] != _HEADER_KEY
            ):
                raise CheckpointError(
                    f"{self.path} is not a checkpoint journal (missing header)"
                )
            if header[1] != FORMAT:
                raise CheckpointError(
                    f"{self.path}: unsupported journal format {header[1]!r} "
                    f"(expected {FORMAT!r})"
                )
            valid = fh.tell()
            while True:
                try:
                    record = pickle.load(fh)
                except EOFError:
                    break
                except Exception:
                    # A kill mid-append leaves a torn final record; everything
                    # before it is intact and kept. open() truncates the tail.
                    break
                if not isinstance(record, tuple) or len(record) != 2:
                    break
                key, value = record
                entries[key] = value
                valid = fh.tell()
        return entries, valid

    # -- writing -----------------------------------------------------------
    def append(self, key: Any, value: Any) -> None:
        """Durably record one completed item (flushed immediately)."""
        self.open()
        try:
            pickle.dump((key, value), self._fh, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                f"cannot journal result for key {key!r}: {exc}"
            ) from exc
        self._fh.flush()
        self._entries[key] = value
        self.appended += 1
        bus = get_bus()
        if bus is not None:
            bus.metrics.counter("checkpoint.appended").inc()
