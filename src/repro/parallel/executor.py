"""Parallel execution of per-feature FRaC work items.

Normalized surprisal "is a giant sum, [so] FRaC is highly parallelizable"
(paper §I-A1): the per-feature model trainings are independent. This module
maps a work function over items under three interchangeable modes:

- ``"serial"`` — a plain loop (the default; also the reference semantics);
- ``"thread"`` — a thread pool (helps only when the work releases the GIL,
  i.e. large-matrix numpy calls);
- ``"process"`` — a fork-based process pool, sharing the read-only training
  matrix with workers through copy-on-write memory rather than pickling it
  per task.

Large shared state is installed once per worker via an initializer and read
through :func:`get_shared`; per-item payloads must stay small and picklable.
Work functions receive child seeds derived via ``SeedSequence.spawn`` by the
caller, so results are identical across modes (DESIGN.md §6).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

import multiprocessing as mp

from repro.utils.exceptions import ReproError

T = TypeVar("T")
R = TypeVar("R")

_MODES = ("serial", "thread", "process")

# Worker-side shared state. In serial/thread modes this is process-local; in
# process mode the initializer installs it in each forked worker.
_SHARED: Any = None


def _init_shared(shared: Any) -> None:
    global _SHARED
    _SHARED = shared


def get_shared() -> Any:
    """The shared state installed for the currently running task batch."""
    return _SHARED


@dataclass(frozen=True)
class ExecutionConfig:
    """How to run a batch of independent work items.

    Attributes
    ----------
    mode:
        ``"serial"``, ``"thread"``, or ``"process"``.
    n_workers:
        Worker count for the pooled modes; ``None`` uses ``os.cpu_count()``.
    chunk_size:
        Items per pickled task in process mode; ``None`` picks
        ``ceil(n_items / (4 * n_workers))``.
    """

    mode: str = "serial"
    n_workers: "int | None" = None
    chunk_size: "int | None" = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ReproError(f"mode must be one of {_MODES}; got {self.mode!r}")
        if self.n_workers is not None and self.n_workers < 1:
            raise ReproError(f"n_workers must be >= 1; got {self.n_workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ReproError(f"chunk_size must be >= 1; got {self.chunk_size}")

    @property
    def effective_workers(self) -> int:
        if self.mode == "serial":
            return 1
        return self.n_workers or os.cpu_count() or 1


def run_tasks(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    shared: Any = None,
    config: "ExecutionConfig | None" = None,
) -> list[R]:
    """Apply ``fn`` to every item, in order, under the configured mode.

    ``shared`` is made available to ``fn`` through :func:`get_shared`
    (installed once per worker, not per item).
    """
    config = config or ExecutionConfig()
    items = list(items)
    if not items:
        return []

    if config.mode == "serial":
        _init_shared(shared)
        try:
            return [fn(item) for item in items]
        finally:
            _init_shared(None)

    if config.mode == "thread":
        _init_shared(shared)
        try:
            with ThreadPoolExecutor(max_workers=config.effective_workers) as pool:
                return list(pool.map(fn, items))
        finally:
            _init_shared(None)

    # process mode: fork so workers inherit nothing-to-pickle views of the
    # shared arrays (POSIX only; matches this library's target platform).
    ctx = mp.get_context("fork")
    n_workers = config.effective_workers
    chunk = config.chunk_size or max(1, (len(items) + 4 * n_workers - 1) // (4 * n_workers))
    with ProcessPoolExecutor(
        max_workers=n_workers,
        mp_context=ctx,
        initializer=_init_shared,
        initargs=(shared,),
    ) as pool:
        return list(pool.map(fn, items, chunksize=chunk))
