"""Parallel execution of per-feature FRaC work items.

Normalized surprisal "is a giant sum, [so] FRaC is highly parallelizable"
(paper §I-A1): the per-feature model trainings are independent. This module
maps a work function over items under three interchangeable modes:

- ``"serial"`` — a plain loop (the default; also the reference semantics);
- ``"thread"`` — a thread pool (helps only when the work releases the GIL,
  i.e. large-matrix numpy calls);
- ``"process"`` — a fork-based process pool, sharing the read-only training
  matrix with workers through copy-on-write memory rather than pickling it
  per task.

Large shared state is installed once per worker via an initializer and read
through :func:`get_shared`; per-item payloads must stay small and picklable.
Work functions receive child seeds derived via ``SeedSequence.spawn`` by the
caller, so results are identical across modes (DESIGN.md §6).

Fault tolerance
---------------
With a :class:`~repro.parallel.faults.RetryPolicy` on the config (or a
checkpoint/fault-plan/failure-report argument), :func:`run_tasks` switches
from the fail-fast fast path to a resilient scheduler: items get a per-task
timeout and bounded retries with deterministic backoff; a crashed worker
breaks only its in-flight chunk, which is resubmitted under a fresh pool
instead of aborting the batch; exhausted items are *skipped* (their result
is ``None`` — the NS "otherwise: 0" branch) and recorded in a structured
:class:`~repro.parallel.faults.FailureReport`. Completed results can stream
to a :class:`~repro.parallel.checkpoint.CheckpointJournal` so a killed
batch resumes where it left off, re-executing only missing items. Retries
re-run the same pure ``fn(item)``, so fault handling never changes values
— only which items complete — preserving the cross-mode determinism
contract.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

import multiprocessing as mp

from repro.parallel import profiling
from repro.parallel.faults import (
    FailureReport,
    FaultPlan,
    RetryPolicy,
    TaskFailure,
    TaskOutcome,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.telemetry.events import (
    CheckpointHit,
    CheckpointMiss,
    FeatureTaskFinished,
    FeatureTaskStarted,
    RetryScheduled,
    TaskTimedOut,
    WorkerCrashDetected,
)
from repro.telemetry.runtime import get_bus, on_worker_start
from repro.utils.exceptions import ReproError
from repro.utils.logging import get_logger

T = TypeVar("T")
R = TypeVar("R")

_MODES = ("serial", "thread", "process")

_log = get_logger("parallel.executor")

# Worker-side shared state. In serial/thread modes this is process-local; in
# process mode the initializer installs it in each forked worker.
_SHARED: Any = None


def _init_shared(shared: Any) -> None:
    global _SHARED
    _SHARED = shared


def get_shared() -> Any:
    """The shared state installed for the currently running task batch."""
    return _SHARED


@dataclass(frozen=True)
class ExecutionConfig:
    """How to run a batch of independent work items.

    Attributes
    ----------
    mode:
        ``"serial"``, ``"thread"``, or ``"process"``.
    n_workers:
        Worker count for the pooled modes; ``None`` uses ``os.cpu_count()``.
    chunk_size:
        Items per pickled task in process mode; ``None`` picks
        ``ceil(n_items / (4 * n_workers))``. (The resilient path always
        submits single-item chunks so failures are attributable.)
    retry:
        Fault-tolerance policy. ``None`` keeps the legacy fail-fast
        behaviour: the first task exception propagates and aborts the
        batch.
    """

    mode: str = "serial"
    n_workers: "int | None" = None
    chunk_size: "int | None" = None
    retry: "RetryPolicy | None" = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ReproError(f"mode must be one of {_MODES}; got {self.mode!r}")
        if self.n_workers is not None and self.n_workers < 1:
            raise ReproError(f"n_workers must be >= 1; got {self.n_workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ReproError(f"chunk_size must be >= 1; got {self.chunk_size}")
        if self.retry is not None and not isinstance(self.retry, RetryPolicy):
            raise ReproError(f"retry must be a RetryPolicy; got {self.retry!r}")

    @property
    def effective_workers(self) -> int:
        if self.mode == "serial":
            return 1
        return self.n_workers or os.cpu_count() or 1


def run_tasks(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    shared: Any = None,
    config: "ExecutionConfig | None" = None,
    checkpoint: Any = None,
    task_key: "Callable[[T], Any] | None" = None,
    fault_plan: "FaultPlan | None" = None,
    failures: "FailureReport | None" = None,
    quiet: bool = False,
) -> list[R]:
    """Apply ``fn`` to every item, in order, under the configured mode.

    ``shared`` is made available to ``fn`` through :func:`get_shared`
    (installed once per worker, not per item).

    Fault-tolerance arguments (any of them routes the batch through the
    resilient scheduler; see the module docstring):

    checkpoint:
        A :class:`~repro.parallel.checkpoint.CheckpointJournal`. Items
        whose key is already journaled are *not* re-executed; fresh
        completions are appended as they finish. Requires ``task_key``.
    task_key:
        Maps an item to its stable, picklable journal key. Keys must be
        unique within the batch and must pin the item's result (the engine
        uses ``(feature_id, slot, seed)``).
    fault_plan:
        Deterministic test-only fault injection (see
        :class:`~repro.parallel.faults.FaultPlan`).
    failures:
        A :class:`~repro.parallel.faults.FailureReport` to fill with any
        items skipped after exhausting retries. Skipped items yield
        ``None`` in the returned list.
    quiet:
        Suppress this batch's executor-side telemetry (task-lifecycle,
        checkpoint, retry/crash events). Work functions still see the
        live bus. The engine's batched path runs its coarse *batch* items
        quiet and re-emits the lifecycle at per-feature granularity
        itself, keeping event streams replay-identical with the
        per-feature path regardless of how features were grouped.
    """
    config = config or ExecutionConfig()
    items = list(items)
    resilient = (
        config.retry is not None
        or checkpoint is not None
        or fault_plan is not None
        or failures is not None
    )
    if not items:
        return []
    if not resilient:
        return _run_fast(fn, items, shared, config, task_key, quiet)
    outcomes = _run_resilient(
        fn, items, shared, config, checkpoint, task_key, fault_plan, failures, quiet
    )
    return [outcome.value for outcome in outcomes]


# -- legacy fail-fast path ---------------------------------------------------


def _init_worker(shared: Any) -> None:
    """Initializer for forked process workers.

    Drops the telemetry bus inherited through fork *before* installing the
    shared state: the parent's sinks (an open JSONL handle, a stderr
    progress line) must not receive interleaved writes from children. The
    parent observes workers through the task-lifecycle events it emits
    itself. Serial/thread modes keep telemetry live (``_init_shared`` runs
    in the parent process there).
    """
    on_worker_start()
    _init_shared(shared)


def _traced_call(fn: Callable[[T], R], bus: Any, index: int, key: Any, item: T) -> R:
    """Fast-path unit with task-lifecycle events (serial/thread modes)."""
    bus.emit(FeatureTaskStarted(index=index, attempt=0, key=key))
    w0 = profiling.wall_seconds()
    value = fn(item)
    bus.emit(
        FeatureTaskFinished(
            index=index,
            status="ok",
            attempts=1,
            key=key,
            duration_s=profiling.wall_seconds() - w0,
        )
    )
    return value


def _run_fast(
    fn: Callable[[T], R],
    items: list[T],
    shared: Any,
    config: ExecutionConfig,
    task_key: "Callable[[T], Any] | None" = None,
    quiet: bool = False,
) -> list[R]:
    bus = None if quiet else get_bus()
    keys: "list[Any] | None" = None
    if bus is not None and task_key is not None:
        keys = [task_key(item) for item in items]

    def _key(i: int) -> Any:
        return None if keys is None else keys[i]

    if config.mode == "serial":
        _init_shared(shared)
        try:
            if bus is None:
                return [fn(item) for item in items]
            return [
                _traced_call(fn, bus, i, _key(i), item) for i, item in enumerate(items)
            ]
        finally:
            _init_shared(None)

    if config.mode == "thread":
        _init_shared(shared)
        try:
            with ThreadPoolExecutor(max_workers=config.effective_workers) as pool:
                if bus is None:
                    return list(pool.map(fn, items))
                futures = [
                    pool.submit(_traced_call, fn, bus, i, _key(i), item)
                    for i, item in enumerate(items)
                ]
                return [fut.result() for fut in futures]
        finally:
            _init_shared(None)

    # process mode: fork so workers inherit nothing-to-pickle views of the
    # shared arrays (POSIX only; matches this library's target platform).
    ctx = mp.get_context("fork")
    n_workers = config.effective_workers
    chunk = config.chunk_size or max(1, (len(items) + 4 * n_workers - 1) // (4 * n_workers))
    with ProcessPoolExecutor(
        max_workers=n_workers,
        mp_context=ctx,
        initializer=_init_worker,
        initargs=(shared,),
    ) as pool:
        if bus is None:
            return list(pool.map(fn, items, chunksize=chunk))
        # Chunked map cannot attribute per-item time; emit the lifecycle
        # parent-side (dispatch batch up front, completion in map order).
        for i in range(len(items)):
            bus.emit(FeatureTaskStarted(index=i, attempt=0, key=_key(i)))
        out: list[R] = []
        for i, value in enumerate(pool.map(fn, items, chunksize=chunk)):
            bus.emit(
                FeatureTaskFinished(
                    index=i, status="ok", attempts=1, key=_key(i), duration_s=None
                )
            )
            out.append(value)
        return out


# -- resilient path ----------------------------------------------------------


def _apply(
    fn: Callable[[T], R],
    fault_plan: "FaultPlan | None",
    index: int,
    attempt: int,
    item: T,
) -> R:
    """The unit the resilient path executes (module-level: picklable)."""
    if fault_plan is not None:
        fault_plan.apply(index, attempt)
    return fn(item)


class _Scheduler:
    """Shared bookkeeping for the serial and pooled resilient runners."""

    def __init__(
        self,
        n: int,
        policy: RetryPolicy,
        keys: "list[Any] | None",
        checkpoint: Any,
        failures: "FailureReport | None",
        quiet: bool = False,
    ) -> None:
        self.policy = policy
        self.keys = keys
        self.checkpoint = checkpoint
        self.failures = failures if failures is not None else FailureReport()
        self.outcomes: "list[TaskOutcome | None]" = [None] * n
        self.bus = None if quiet else get_bus()

    def key_for(self, index: int) -> Any:
        return None if self.keys is None else self.keys[index]

    def record_cached(self, index: int, value: Any) -> None:
        self.outcomes[index] = TaskOutcome(index=index, status="cached", value=value)
        if self.bus is not None:
            key = self.key_for(index)
            self.bus.emit(CheckpointHit(index=index, key=key))
            self.bus.emit(
                FeatureTaskFinished(index=index, status="cached", attempts=0, key=key)
            )

    def record_ok(
        self, index: int, attempts: int, value: Any, duration_s: "float | None" = None
    ) -> None:
        self.outcomes[index] = TaskOutcome(
            index=index, status="ok", value=value, attempts=attempts
        )
        if self.checkpoint is not None:
            self.checkpoint.append(self.key_for(index), value)
        if self.bus is not None:
            self.bus.emit(
                FeatureTaskFinished(
                    index=index,
                    status="ok",
                    attempts=attempts,
                    key=self.key_for(index),
                    duration_s=duration_s,
                )
            )

    def record_exhausted(
        self, index: int, attempts: int, kind: str, exc: BaseException
    ) -> None:
        """An item ran out of retries: skip it, or propagate per policy."""
        if self.policy.on_exhaustion == "raise":
            if kind == "timeout":
                raise TaskTimeoutError(
                    f"task {index} exceeded {self.policy.task_timeout}s "
                    f"on attempt {attempts}"
                ) from exc
            if kind == "crash":
                raise WorkerCrashError(
                    f"worker died running task {index} (attempt {attempts})"
                ) from exc
            raise exc
        failure = TaskFailure(
            index=index,
            key=self.key_for(index),
            kind=kind,
            message=f"{type(exc).__name__}: {exc}",
            attempts=attempts,
        )
        self.failures.record(failure)
        self.outcomes[index] = TaskOutcome(
            index=index, status="skipped", attempts=attempts, failure=failure
        )
        if self.bus is not None:
            self.bus.emit(
                FeatureTaskFinished(
                    index=index,
                    status="skipped",
                    attempts=attempts,
                    key=self.key_for(index),
                    kind=kind,
                )
            )
        _log.warning(
            "task %d skipped after %d attempt(s) (%s): %s",
            index,
            attempts,
            kind,
            exc,
        )


def _run_resilient(
    fn: Callable[[T], R],
    items: list[T],
    shared: Any,
    config: ExecutionConfig,
    checkpoint: Any,
    task_key: "Callable[[T], Any] | None",
    fault_plan: "FaultPlan | None",
    failures: "FailureReport | None",
    quiet: bool = False,
) -> list[TaskOutcome]:
    # With no explicit policy the resilient path keeps fail-fast semantics
    # (no retries, first error raises) while still honouring checkpoints.
    policy = config.retry or RetryPolicy(max_retries=0, on_exhaustion="raise")

    keys: "list[Any] | None" = None
    if task_key is not None:
        keys = [task_key(item) for item in items]
        if len(set(keys)) != len(keys):
            raise ReproError("task_key produced duplicate keys within one batch")
    if checkpoint is not None and keys is None:
        raise ReproError("checkpointing requires a task_key")

    sched = _Scheduler(len(items), policy, keys, checkpoint, failures, quiet)

    pending: list[tuple[int, int]] = []  # (item index, attempts so far)
    if checkpoint is not None:
        completed = checkpoint.entries()
        for i, key in enumerate(keys):
            if key in completed:
                sched.record_cached(i, completed[key])
            else:
                if sched.bus is not None:
                    sched.bus.emit(CheckpointMiss(index=i, key=key))
                pending.append((i, 0))
        if len(pending) < len(items):
            _log.info(
                "checkpoint %s: %d/%d items already complete; resuming %d",
                getattr(checkpoint, "path", "?"),
                len(items) - len(pending),
                len(items),
                len(pending),
            )
    else:
        pending = [(i, 0) for i in range(len(items))]

    if pending:
        if config.mode == "serial":
            _run_resilient_serial(fn, items, shared, fault_plan, sched, pending)
        else:
            _run_resilient_pool(fn, items, shared, config, fault_plan, sched, pending)

    missing = [i for i, outcome in enumerate(sched.outcomes) if outcome is None]
    if missing:  # pragma: no cover - scheduler invariant
        raise ReproError(f"scheduler lost track of items {missing}")
    return list(sched.outcomes)


def _run_resilient_serial(
    fn: Callable[[T], R],
    items: list[T],
    shared: Any,
    fault_plan: "FaultPlan | None",
    sched: _Scheduler,
    pending: list[tuple[int, int]],
) -> None:
    policy = sched.policy
    bus = sched.bus
    _init_shared(shared)
    try:
        for index, attempt in pending:
            while True:
                if bus is not None:
                    bus.emit(
                        FeatureTaskStarted(
                            index=index, attempt=attempt, key=sched.key_for(index)
                        )
                    )
                w0 = profiling.wall_seconds() if bus is not None else 0.0
                try:
                    value = _apply(fn, fault_plan, index, attempt, items[index])
                except Exception as exc:
                    attempt += 1
                    if attempt > policy.max_retries:
                        sched.record_exhausted(index, attempt, "exception", exc)
                        break
                    backoff = policy.backoff_seconds(attempt)
                    if bus is not None:
                        bus.emit(
                            RetryScheduled(
                                index=index,
                                attempt=attempt,
                                kind="exception",
                                backoff_s=backoff,
                            )
                        )
                    profiling.sleep_seconds(backoff)
                else:
                    duration = (
                        profiling.wall_seconds() - w0 if bus is not None else None
                    )
                    sched.record_ok(index, attempt + 1, value, duration)
                    break
    finally:
        _init_shared(None)


def _make_pool(mode: str, n_workers: int, shared: Any):
    if mode == "thread":
        return ThreadPoolExecutor(max_workers=n_workers)
    ctx = mp.get_context("fork")
    return ProcessPoolExecutor(
        max_workers=n_workers,
        mp_context=ctx,
        initializer=_init_worker,
        initargs=(shared,),
    )


def _teardown_pool(pool: Any, broken: bool) -> None:
    """Shut a pool down; if it is broken or hosts a hung task, do not wait.

    A hung process-mode worker would otherwise be joined forever, so any
    surviving worker processes are terminated outright (their in-flight
    items have already been requeued). Hung *threads* cannot be killed in
    CPython; the abandoned pool's threads drain whenever their tasks
    return.
    """
    pool.shutdown(wait=not broken, cancel_futures=True)
    if broken:
        procs = getattr(pool, "_processes", None) or {}
        for proc in list(procs.values()):
            if proc.is_alive():
                proc.terminate()


def _charge(
    sched: _Scheduler,
    queue: "deque[tuple[int, int]]",
    retry_attempts: list[int],
    index: int,
    attempts_used: int,
    kind: str,
    exc: BaseException,
) -> None:
    """Charge one attempt to an item: requeue it, or exhaust its budget."""
    if sched.bus is not None and kind == "timeout":
        sched.bus.emit(
            TaskTimedOut(
                index=index,
                attempt=attempts_used,
                timeout_s=sched.policy.task_timeout,
            )
        )
    if attempts_used > sched.policy.max_retries:
        sched.record_exhausted(index, attempts_used, kind, exc)
    else:
        queue.append((index, attempts_used))
        retry_attempts.append(attempts_used)
        if sched.bus is not None:
            sched.bus.emit(
                RetryScheduled(
                    index=index,
                    attempt=attempts_used,
                    kind=kind,
                    backoff_s=sched.policy.backoff_seconds(attempts_used),
                )
            )


def _run_resilient_pool(
    fn: Callable[[T], R],
    items: list[T],
    shared: Any,
    config: ExecutionConfig,
    fault_plan: "FaultPlan | None",
    sched: _Scheduler,
    pending: list[tuple[int, int]],
) -> None:
    policy = sched.policy
    queue: "deque[tuple[int, int]]" = deque(pending)
    isolate = False
    if config.mode == "thread":
        _init_shared(shared)
    try:
        while queue:
            retry_attempts: list[int] = []
            if isolate:
                isolate = False
                _isolation_probe(
                    fn, items, shared, config, fault_plan, sched, queue, retry_attempts
                )
            else:
                isolate = _wide_wave(
                    fn, items, shared, config, fault_plan, sched, queue, retry_attempts
                )
            if queue and retry_attempts:
                # One deterministic backoff per wave: the largest pending
                # attempt number dictates the wait.
                profiling.sleep_seconds(
                    max(policy.backoff_seconds(a) for a in retry_attempts)
                )
    finally:
        if config.mode == "thread":
            _init_shared(None)


def _wide_wave(
    fn: Callable[[T], R],
    items: list[T],
    shared: Any,
    config: ExecutionConfig,
    fault_plan: "FaultPlan | None",
    sched: _Scheduler,
    queue: "deque[tuple[int, int]]",
    retry_attempts: list[int],
) -> bool:
    """Run every pending item under a fresh full-width pool.

    A wave that breaks — worker crash or per-task timeout — harvests
    whatever finished, requeues the survivors untouched, and recycles the
    pool. A *timeout* is attributable (the timed-out future is known
    exactly) and is charged directly. A *crash* is not: the dying worker
    marks every in-flight future ``BrokenExecutor``, so whichever future
    the harvest loop happened to be blocked on is as likely an innocent
    bystander as the culprit. Crash waves therefore charge nobody and
    return ``True``, asking the caller to run an isolation probe next.
    """
    policy = sched.policy
    bus = sched.bus
    pool = _make_pool(config.mode, config.effective_workers, shared)
    batch = list(queue)
    queue.clear()
    broken = False
    crashed = False
    submitted_at: dict[int, float] = {}
    try:
        futures: "list[tuple[int, int, Future | None]]" = []
        for index, attempt in batch:
            if broken:
                futures.append((index, attempt, None))
                continue
            try:
                fut = pool.submit(_apply, fn, fault_plan, index, attempt, items[index])
            except (BrokenExecutor, RuntimeError) as exc:
                # The pool died while the wave was still being submitted;
                # everything from here on re-runs after the isolation probe.
                _log.warning("pool broke during submission: %s", exc)
                broken = crashed = True
                futures.append((index, attempt, None))
            else:
                if bus is not None:
                    bus.emit(
                        FeatureTaskStarted(
                            index=index, attempt=attempt, key=sched.key_for(index)
                        )
                    )
                    submitted_at[index] = profiling.wall_seconds()
                futures.append((index, attempt, fut))

        def _elapsed(index: int) -> "float | None":
            t0 = submitted_at.get(index)
            return None if t0 is None else profiling.wall_seconds() - t0

        for index, attempt, fut in futures:
            if fut is None:
                queue.append((index, attempt))
                continue
            if broken:
                # Pool already declared dead: keep any result that finished
                # before the break, requeue the rest at an unchanged attempt
                # count (none of them is known to be at fault).
                if fut.done() and not fut.cancelled() and fut.exception() is None:
                    sched.record_ok(index, attempt + 1, fut.result(), _elapsed(index))
                else:
                    fut.cancel()
                    exc = fut.exception() if fut.done() and not fut.cancelled() else None
                    if exc is not None and not isinstance(exc, BrokenExecutor):
                        _charge(
                            sched, queue, retry_attempts, index, attempt + 1, "exception", exc
                        )
                    else:
                        queue.append((index, attempt))
                continue
            try:
                value = fut.result(timeout=policy.task_timeout)
            except FuturesTimeoutError as exc:
                # The item is hung (or too slow). The pool cannot be trusted
                # to free the worker, so recycle it.
                broken = True
                _charge(sched, queue, retry_attempts, index, attempt + 1, "timeout", exc)
            except BrokenExecutor:
                broken = crashed = True
                queue.append((index, attempt))
            except Exception as exc:
                _charge(sched, queue, retry_attempts, index, attempt + 1, "exception", exc)
            else:
                sched.record_ok(index, attempt + 1, value, _elapsed(index))
        if crashed and bus is not None:
            # One event per broken wave, emitted after the harvest settles so
            # the requeue count is exact. The phase is always "wave" whether
            # the break surfaced during submission or harvest — which of the
            # two saw it first is a scheduling race, not a run property.
            bus.emit(
                WorkerCrashDetected(phase="wave", index=None, n_requeued=len(queue))
            )
    finally:
        _teardown_pool(pool, broken)
    return crashed


def _isolation_probe(
    fn: Callable[[T], R],
    items: list[T],
    shared: Any,
    config: ExecutionConfig,
    fault_plan: "FaultPlan | None",
    sched: _Scheduler,
    queue: "deque[tuple[int, int]]",
    retry_attempts: list[int],
) -> None:
    """Re-run queued items one at a time under a single-worker pool.

    After a wide wave breaks on a worker crash, the broken pool cannot say
    which in-flight item killed it. With exactly one item in flight a crash
    is attributable with certainty: charge that item, requeue the untried
    remainder for the next full-width wave, and return. A probe that runs
    dry without crashing has simply finished the batch.
    """
    policy = sched.policy
    bus = sched.bus
    batch = list(queue)
    queue.clear()
    pool = _make_pool(config.mode, 1, shared)
    broken = False
    try:
        for pos, (index, attempt) in enumerate(batch):
            try:
                fut = pool.submit(_apply, fn, fault_plan, index, attempt, items[index])
            except (BrokenExecutor, RuntimeError) as exc:  # pragma: no cover
                broken = True
                _log.warning("isolation pool broke at submission: %s", exc)
                queue.extend(batch[pos:])
                return
            if bus is not None:
                bus.emit(
                    FeatureTaskStarted(
                        index=index, attempt=attempt, key=sched.key_for(index)
                    )
                )
            w0 = profiling.wall_seconds() if bus is not None else 0.0
            try:
                value = fut.result(timeout=policy.task_timeout)
            except FuturesTimeoutError as exc:
                broken = True
                _charge(sched, queue, retry_attempts, index, attempt + 1, "timeout", exc)
                queue.extend(batch[pos + 1 :])
                return
            except BrokenExecutor as exc:
                broken = True
                if bus is not None:
                    # One item in flight: the crash is attributable exactly.
                    bus.emit(
                        WorkerCrashDetected(
                            phase="probe",
                            index=index,
                            n_requeued=len(batch) - pos - 1,
                        )
                    )
                _charge(sched, queue, retry_attempts, index, attempt + 1, "crash", exc)
                queue.extend(batch[pos + 1 :])
                return
            except Exception as exc:
                _charge(sched, queue, retry_attempts, index, attempt + 1, "exception", exc)
            else:
                duration = profiling.wall_seconds() - w0 if bus is not None else None
                sched.record_ok(index, attempt + 1, value, duration)
    finally:
        _teardown_pool(pool, broken)
