"""Lightweight profiling helpers (wall + CPU timing of code sections)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class SectionTimer:
    """Accumulates named section timings; useful for harness breakdowns."""

    wall: dict[str, float] = field(default_factory=dict)
    cpu: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str):
        w0, c0 = time.perf_counter(), time.process_time()
        try:
            yield
        finally:
            self.wall[name] = self.wall.get(name, 0.0) + (time.perf_counter() - w0)
            self.cpu[name] = self.cpu.get(name, 0.0) + (time.process_time() - c0)

    def summary(self) -> str:
        lines = [f"{name}: wall={self.wall[name]:.3f}s cpu={self.cpu[name]:.3f}s" for name in self.wall]
        return "\n".join(lines)


def cpu_seconds() -> float:
    """Process CPU clock, for resource accounting.

    This module is the only place the library may read clocks (enforced by
    fraclint rule FRL007, see docs/invariants.md): timing must stay an
    *observation* — never an input to results — so every consumer routes
    through here, where the nondeterminism is contained and auditable.
    """
    return time.process_time()


def sleep_seconds(seconds: float) -> None:
    """Suspend the calling thread for ``seconds`` (non-positive: no-op).

    Scheduling delays — retry backoff, injected hangs — are time *effects*
    the same way clock reads are time *observations*: neither may influence
    computed results, only when they happen. Routing every sleep through
    here keeps that nondeterminism contained alongside the clocks (FRL007),
    and gives tests one seam to monkeypatch when asserting deterministic
    backoff schedules without actually waiting.
    """
    if seconds > 0:
        time.sleep(seconds)


@contextmanager
def timed_section(label: str, sink: "list[tuple[str, float]] | None" = None):
    """Time one section; append ``(label, wall_seconds)`` to ``sink``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        if sink is not None:
            sink.append((label, elapsed))
