"""Lightweight profiling helpers (wall + CPU timing of code sections).

This module is the only place the library may read clocks (enforced by
fraclint rule FRL007, see docs/invariants.md): timing must stay an
*observation* — never an input to results — so every consumer routes
through here, where the nondeterminism is contained and auditable. The
telemetry layer (:mod:`repro.telemetry`) builds on these primitives;
:class:`SectionTimer` remains as the dependency-free local accumulator,
while traced runs should prefer :func:`repro.telemetry.span`, which
feeds the same numbers through the event bus.
"""

from __future__ import annotations

import resource
import sys
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class SectionTimer:
    """Accumulates named section timings; useful for harness breakdowns.

    For traced runs prefer :func:`repro.telemetry.span`: spans nest,
    carry RSS, and land in the trace file. SectionTimer stays for
    callers that want purely local numbers with no bus configured.
    """

    wall: dict[str, float] = field(default_factory=dict)
    cpu: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str):
        w0, c0 = time.perf_counter(), time.process_time()
        try:
            yield
        finally:
            self.wall[name] = self.wall.get(name, 0.0) + (time.perf_counter() - w0)
            self.cpu[name] = self.cpu.get(name, 0.0) + (time.process_time() - c0)

    def summary(self) -> str:
        """Sections sorted by descending wall time, with a total line."""
        ordered = sorted(self.wall, key=lambda name: (-self.wall[name], name))
        lines = [
            f"{name}: wall={self.wall[name]:.3f}s cpu={self.cpu[name]:.3f}s"
            for name in ordered
        ]
        lines.append(
            f"total: wall={sum(self.wall.values()):.3f}s "
            f"cpu={sum(self.cpu.values()):.3f}s"
        )
        return "\n".join(lines)


def cpu_seconds() -> float:
    """Process CPU clock, for resource accounting."""
    return time.process_time()


def wall_seconds() -> float:
    """Monotonic wall clock, for telemetry timestamps and span widths."""
    return time.perf_counter()


def peak_rss_bytes() -> int:
    """Peak resident-set size of this process, in bytes.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; normalized
    here so telemetry events carry one unit. Not a clock — but resource
    observation belongs in the same contained layer.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def sleep_seconds(seconds: float) -> None:
    """Suspend the calling thread for ``seconds`` (non-positive: no-op).

    Scheduling delays — retry backoff, injected hangs — are time *effects*
    the same way clock reads are time *observations*: neither may influence
    computed results, only when they happen. Routing every sleep through
    here keeps that nondeterminism contained alongside the clocks (FRL007),
    and gives tests one seam to monkeypatch when asserting deterministic
    backoff schedules without actually waiting.
    """
    if seconds > 0:
        time.sleep(seconds)


@contextmanager
def timed_section(label: str, sink: "list[tuple[str, float]] | None" = None):
    """Time one section; route it through the telemetry span layer.

    .. deprecated:: the ``sink`` tuple-list argument. Pass a
       :func:`repro.telemetry.span` around the section (or read the
       yielded handle) instead; the tuple sink is kept for one
       deprecation cycle and still receives ``(label, wall_seconds)``.
    """
    if sink is not None:
        warnings.warn(
            "timed_section(sink=...) is deprecated; use repro.telemetry.span "
            "(events carry the same wall time, plus CPU and RSS)",
            DeprecationWarning,
            stacklevel=3,
        )
    from repro.telemetry.spans import span as _span  # lazy: avoid import cycle

    start = time.perf_counter()
    try:
        with _span(label):  # no-op (and clock-free) when telemetry is off
            yield
    finally:
        elapsed = time.perf_counter() - start
        if sink is not None:
            sink.append((label, elapsed))
