"""Parallel runtime: executors, resource accounting, profiling."""

from repro.parallel.executor import ExecutionConfig, get_shared, run_tasks
from repro.parallel.profiling import SectionTimer, timed_section
from repro.parallel.resources import (
    ResourceLog,
    ResourceReport,
    TaskCost,
    design_matrix_bytes,
)

__all__ = [
    "ExecutionConfig",
    "run_tasks",
    "get_shared",
    "TaskCost",
    "ResourceLog",
    "ResourceReport",
    "design_matrix_bytes",
    "SectionTimer",
    "timed_section",
]
