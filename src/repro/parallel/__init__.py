"""Parallel runtime: executors, fault tolerance, resource accounting."""

from repro.parallel.checkpoint import CheckpointError, CheckpointJournal
from repro.parallel.executor import ExecutionConfig, get_shared, run_tasks
from repro.parallel.faults import (
    FailureReport,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    TaskFailure,
    TaskOutcome,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.parallel.profiling import SectionTimer, sleep_seconds, timed_section
from repro.parallel.resources import (
    ResourceLog,
    ResourceReport,
    TaskCost,
    design_matrix_bytes,
)

__all__ = [
    "ExecutionConfig",
    "run_tasks",
    "get_shared",
    "RetryPolicy",
    "TaskOutcome",
    "TaskFailure",
    "FailureReport",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "TaskTimeoutError",
    "WorkerCrashError",
    "CheckpointJournal",
    "CheckpointError",
    "TaskCost",
    "ResourceLog",
    "ResourceReport",
    "design_matrix_bytes",
    "SectionTimer",
    "sleep_seconds",
    "timed_section",
]
