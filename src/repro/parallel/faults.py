"""Fault model for the parallel executor: retries, outcomes, injection.

At SNP scale a per-feature batch holds ~170k work items; one hung learner
or one crashed worker must not discard hours of finished training. This
module defines the vocabulary the executor's resilient path speaks:

- :class:`RetryPolicy` — per-task timeout plus bounded retry with a
  deterministic exponential-backoff schedule;
- :class:`TaskOutcome` / :class:`TaskFailure` / :class:`FailureReport` —
  the structured record of what happened to every item, so a feature whose
  retries are exhausted is *skipped* (the NS "otherwise: 0" branch applied
  at train time) and accounted for, never silently lost;
- :class:`FaultPlan` — a deterministic fault-injection hook (fail, hang,
  or crash item *i* on attempt *k*) used by the fault-tolerance and
  determinism test suites.

Backoff sleeping and injected hangs are time *effects*; both route through
:func:`repro.parallel.profiling.sleep_seconds` so the FRL007 containment of
nondeterministic time stays intact. Nothing in this module reads a clock:
the backoff schedule is a pure function of the attempt number, so the
retry sequence is identical on every run and every machine.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.parallel import profiling
from repro.utils.exceptions import ReproError

_FAULT_KINDS = ("raise", "hang", "crash")
_EXHAUSTION_MODES = ("skip", "raise")

#: Exit status used by injected worker crashes, chosen to be recognizably
#: deliberate in test logs (and distinct from common signal exits).
CRASH_EXIT_CODE = 77


class InjectedFault(ReproError):
    """Raised by :class:`FaultPlan` for an injected ``"raise"``/``"hang"``."""


class TaskTimeoutError(ReproError):
    """A task exceeded the policy's per-task timeout on its final attempt."""


class WorkerCrashError(ReproError):
    """A worker process died (pool broken) on a task's final attempt."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry policy for one batch of work items.

    Attributes
    ----------
    max_retries:
        Re-executions allowed per item after its first attempt (0 = fail
        fast on the first error).
    task_timeout:
        Seconds an item may run before its attempt is declared hung and the
        pool is recycled. ``None`` disables the timeout. Enforced in the
        pooled modes only: serial execution cannot preempt a running task,
        so a serial "hang" is indistinguishable from slow work.
    backoff_base / backoff_multiplier / backoff_max:
        Deterministic exponential backoff: retry ``a`` (1-based) waits
        ``min(backoff_max, backoff_base * backoff_multiplier**(a - 1))``
        seconds. The schedule is a pure function of the attempt number —
        no jitter — so retry timing is reproducible and testable.
    on_exhaustion:
        ``"skip"`` records the item in the :class:`FailureReport` and
        yields ``None`` for it (the NS "otherwise: 0" branch); ``"raise"``
        propagates the final error, preserving fail-fast semantics.
    """

    max_retries: int = 2
    task_timeout: "float | None" = None
    backoff_base: float = 0.1
    backoff_multiplier: float = 2.0
    backoff_max: float = 30.0
    on_exhaustion: str = "skip"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ReproError(f"max_retries must be >= 0; got {self.max_retries}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ReproError(f"task_timeout must be positive; got {self.task_timeout}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ReproError("backoff_base and backoff_max must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ReproError(
                f"backoff_multiplier must be >= 1; got {self.backoff_multiplier}"
            )
        if self.on_exhaustion not in _EXHAUSTION_MODES:
            raise ReproError(
                f"on_exhaustion must be one of {_EXHAUSTION_MODES}; "
                f"got {self.on_exhaustion!r}"
            )

    def backoff_seconds(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based); 0.0 for attempt <= 0."""
        if attempt <= 0:
            return 0.0
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_multiplier ** (attempt - 1),
        )

    def backoff_schedule(self) -> list[float]:
        """The full deterministic delay sequence for ``max_retries`` retries."""
        return [self.backoff_seconds(a) for a in range(1, self.max_retries + 1)]


@dataclass(frozen=True)
class TaskFailure:
    """One item whose retries were exhausted."""

    index: int
    key: Any
    kind: str  # "exception" | "timeout" | "crash"
    message: str
    attempts: int

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "key": self.key,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
        }

    def to_dict(self) -> dict:
        """JSON-safe payload that :meth:`from_dict` restores exactly.

        Tuple keys (the engine's ``(feature_id, slot, seed)``) are tagged
        so the round-trip through JSON — which has no tuple type — comes
        back as a tuple, keeping restored failures comparable to live ones.
        """
        key = self.key
        if isinstance(key, tuple):
            key = {"__tuple__": [int(v) if hasattr(v, "item") else v for v in key]}
        return {
            "index": int(self.index),
            "key": key,
            "kind": self.kind,
            "message": self.message,
            "attempts": int(self.attempts),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TaskFailure":
        key = payload.get("key")
        if isinstance(key, Mapping) and "__tuple__" in key:
            key = tuple(key["__tuple__"])
        elif isinstance(key, list):
            key = tuple(key)
        return cls(
            index=int(payload["index"]),
            key=key,
            kind=str(payload["kind"]),
            message=str(payload.get("message", "")),
            attempts=int(payload.get("attempts", 0)),
        )


@dataclass(frozen=True)
class TaskOutcome:
    """What happened to one work item.

    ``status`` is ``"ok"`` (executed successfully), ``"cached"`` (value
    replayed from a checkpoint journal, zero executions this run), or
    ``"skipped"`` (retries exhausted; ``failure`` holds the record).
    """

    index: int
    status: str
    value: Any = None
    attempts: int = 0
    failure: "TaskFailure | None" = None


@dataclass
class FailureReport:
    """Structured account of every item dropped from a batch.

    A surprisal sum is only trustworthy if dropped features are accounted
    for deterministically; callers keep this report next to the results so
    "feature skipped after N retries" is an auditable fact, not a silent
    hole in the NS sum.
    """

    failures: list[TaskFailure] = field(default_factory=list)

    def record(self, failure: TaskFailure) -> None:
        self.failures.append(failure)

    def extend(self, other: "FailureReport") -> None:
        self.failures.extend(other.failures)

    def indices(self) -> list[int]:
        return [f.index for f in self.failures]

    def __len__(self) -> int:
        return len(self.failures)

    def __bool__(self) -> bool:
        return bool(self.failures)

    def __iter__(self) -> Iterator[TaskFailure]:
        return iter(self.failures)

    def as_dict(self) -> dict:
        return {"n_failures": len(self.failures), "failures": [f.as_dict() for f in self.failures]}

    def to_dict(self) -> dict:
        """JSON-safe round-trip form (see :meth:`TaskFailure.to_dict`).

        This is the payload embedded in the terminal ``RunFinished``
        telemetry event, so a trace file alone reconstructs what failed
        and why.
        """
        return {
            "n_failures": len(self.failures),
            "failures": [f.to_dict() for f in self.failures],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FailureReport":
        report = cls()
        for entry in payload.get("failures", []):
            report.record(TaskFailure.from_dict(entry))
        return report

    def summary(self) -> str:
        if not self.failures:
            return "no task failures"
        lines = [f"{len(self.failures)} task(s) skipped after exhausting retries:"]
        for f in self.failures:
            lines.append(
                f"  item {f.index} (key={f.key!r}): {f.kind} after "
                f"{f.attempts} attempt(s) — {f.message}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what to do when the (item, attempt) pair fires.

    ``kind``:

    - ``"raise"`` — raise :class:`InjectedFault` (an ordinary task error);
    - ``"hang"`` — sleep ``hang_seconds`` then raise, simulating a stuck
      task (under a pooled mode with a ``task_timeout`` the timeout fires
      first; serial mode degrades to a slow failure);
    - ``"crash"`` — ``os._exit`` the executing process, simulating a
      killed worker. Only meaningful in process mode: in serial or thread
      mode this would take the main interpreter down, exactly like a real
      segfault would.
    """

    kind: str
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ReproError(f"fault kind must be one of {_FAULT_KINDS}; got {self.kind!r}")
        if self.hang_seconds < 0:
            raise ReproError(f"hang_seconds must be >= 0; got {self.hang_seconds}")


class FaultPlan:
    """Deterministic fault injection: fail item ``i`` on attempt ``k``.

    The plan is a pure lookup table keyed by ``(item index, attempt)``
    (attempts are 0-based), so a given execution schedule always injects
    the same faults — the property the cross-mode determinism suite leans
    on. Plans are plain picklable objects and travel to process-mode
    workers alongside the work function.
    """

    def __init__(self, faults: "Mapping[tuple[int, int], FaultSpec | str] | None" = None) -> None:
        plan: dict[tuple[int, int], FaultSpec] = {}
        for (index, attempt), spec in dict(faults or {}).items():
            if isinstance(spec, str):
                spec = FaultSpec(kind=spec)
            if not isinstance(spec, FaultSpec):
                raise ReproError(f"fault spec must be FaultSpec or str; got {spec!r}")
            plan[(int(index), int(attempt))] = spec
        self._plan = plan

    @classmethod
    def failing(
        cls,
        index: int,
        *,
        attempts: "int | Iterator[int] | list[int] | tuple[int, ...]" = 0,
        kind: str = "raise",
        hang_seconds: float = 30.0,
    ) -> "FaultPlan":
        """Plan that faults one item on the given attempt(s)."""
        if isinstance(attempts, int):
            attempts = [attempts]
        spec = FaultSpec(kind=kind, hang_seconds=hang_seconds)
        return cls({(index, attempt): spec for attempt in attempts})

    def spec_for(self, index: int, attempt: int) -> "FaultSpec | None":
        return self._plan.get((int(index), int(attempt)))

    def apply(self, index: int, attempt: int) -> None:
        """Fire the configured fault for (index, attempt), if any."""
        spec = self.spec_for(index, attempt)
        if spec is None:
            return
        if spec.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if spec.kind == "hang":
            profiling.sleep_seconds(spec.hang_seconds)
        raise InjectedFault(
            f"injected {spec.kind} fault: item {index}, attempt {attempt}"
        )

    def __len__(self) -> int:
        return len(self._plan)
