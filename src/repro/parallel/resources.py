"""Resource accounting: CPU time and a deterministic memory model.

The paper's Tables II-V report CPU hours and memory in GB, then express the
variants' costs *as fractions of the full run*. Absolute parity with the
authors' cluster is out of scope (DESIGN.md §5); what must be preserved is
the *ratio* structure. CPU time is measured (``time.process_time``, so the
number is scheduling-independent); memory is *modelled* analytically —
bytes of the training design matrix each work item materializes, plus the
fitted model state retained — so memory fractions are exactly reproducible
on any machine, rather than depending on allocator behaviour.

Peak memory of a run is modelled as::

    data_bytes                      # the data set held in RAM
    + n_workers * max(design_bytes) # concurrent per-item working sets
    + sum(model_bytes)              # all retained fitted state
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.parallel.profiling import cpu_seconds as _cpu_now


@dataclass(frozen=True)
class TaskCost:
    """Cost of one work item (one feature's models, or one projection).

    ``work_units`` is the machine-independent operation count — training
    passes over the design matrix (``n_fits * n_rows * width``). Measured
    ``cpu_seconds`` on a pure-Python engine is dominated by per-update
    interpreter overhead that does not scale with model width the way the
    paper's C/libSVM stack does, so the *work* model is what reproduces
    the paper's time-fraction structure; measured CPU is reported
    alongside for transparency (DESIGN.md §5).
    """

    cpu_seconds: float
    design_bytes: int
    model_bytes: int
    work_units: int = 0

    def __post_init__(self) -> None:
        if min(self.cpu_seconds, self.design_bytes, self.model_bytes, self.work_units) < 0:
            raise ValueError(f"costs must be non-negative; got {self}")


def design_matrix_bytes(n_rows: int, n_cols: int, itemsize: int = 8) -> int:
    """Bytes of a dense ``n_rows x n_cols`` training design matrix."""
    return int(n_rows) * int(n_cols) * int(itemsize)


def training_work_units(n_fits: int, n_rows: int, n_cols: int) -> int:
    """Operation-count model of training: passes over the design matrix."""
    return int(n_fits) * int(n_rows) * max(int(n_cols), 1)


@dataclass
class ResourceLog:
    """Accumulates per-item costs during a run."""

    data_bytes: int = 0
    n_workers: int = 1
    cpu_seconds: float = 0.0
    peak_design_bytes: int = 0
    total_model_bytes: int = 0
    total_work_units: int = 0
    n_tasks: int = 0
    overhead_seconds: float = 0.0

    def add(self, cost: TaskCost) -> None:
        self.cpu_seconds += cost.cpu_seconds
        self.peak_design_bytes = max(self.peak_design_bytes, cost.design_bytes)
        self.total_model_bytes += cost.model_bytes
        self.total_work_units += cost.work_units
        self.n_tasks += 1

    @contextmanager
    def measure_overhead(self):
        """Time a non-itemized section (projection, encoding, scoring...)."""
        start = _cpu_now()
        try:
            yield
        finally:
            self.overhead_seconds += _cpu_now() - start

    def report(self) -> "ResourceReport":
        return ResourceReport(
            cpu_seconds=self.cpu_seconds + self.overhead_seconds,
            memory_bytes=(
                self.data_bytes
                + self.n_workers * self.peak_design_bytes
                + self.total_model_bytes
            ),
            n_tasks=self.n_tasks,
            work_units=self.total_work_units,
        )


@dataclass(frozen=True)
class ResourceReport:
    """Final cost of a run; supports fraction-of-full comparison and
    combination across ensemble members / replicates."""

    cpu_seconds: float
    memory_bytes: int
    n_tasks: int = 0
    work_units: int = 0

    def __add__(self, other: "ResourceReport") -> "ResourceReport":
        """Sequential composition: times/work add, memory peaks take the max.

        This models ensemble members run one after another (the paper's
        ensembles reuse the same memory budget per member; their *times*
        accumulate).
        """
        if not isinstance(other, ResourceReport):
            return NotImplemented
        return ResourceReport(
            cpu_seconds=self.cpu_seconds + other.cpu_seconds,
            memory_bytes=max(self.memory_bytes, other.memory_bytes),
            n_tasks=self.n_tasks + other.n_tasks,
            work_units=self.work_units + other.work_units,
        )

    def fraction_of(self, full: "ResourceReport") -> dict[str, float]:
        """Work/time/memory as fractions of a reference run (Tables III-V).

        ``work_fraction`` (modelled operation count) is the quantity that
        reproduces the paper's "Time %" columns; ``time_fraction`` is the
        measured-CPU counterpart on this interpreter (see TaskCost).
        """
        def _frac(a: float, b: float) -> float:
            return a / b if b else float("nan")

        return {
            "work_fraction": _frac(self.work_units, full.work_units),
            "time_fraction": _frac(self.cpu_seconds, full.cpu_seconds),
            "mem_fraction": _frac(self.memory_bytes, full.memory_bytes),
        }

    @staticmethod
    def mean(reports: "list[ResourceReport]") -> "ResourceReport":
        """Average across replicates (the paper averages replicate costs)."""
        if not reports:
            raise ValueError("cannot average zero reports")
        return ResourceReport(
            cpu_seconds=sum(r.cpu_seconds for r in reports) / len(reports),
            memory_bytes=int(sum(r.memory_bytes for r in reports) / len(reports)),
            n_tasks=int(sum(r.n_tasks for r in reports) / len(reports)),
            work_units=int(sum(r.work_units for r in reports) / len(reports)),
        )
