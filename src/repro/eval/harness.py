"""Replicate evaluation harness.

Runs a detector factory over a data set's replicates, collecting per-
replicate AUC and resource reports, and expresses variant results as
fractions of a full-FRaC reference — the exact quantity Tables III-V
report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.types import AnomalyDetector
from repro.data.dataset import Replicate
from repro.eval.auc import auc_score
from repro.eval.stats import MeanStd, mean_std
from repro.parallel.resources import ResourceReport
from repro.utils.exceptions import DataError
from repro.utils.rng import spawn_seeds

#: Builds one detector for (replicate index, seed).
DetectorFactory = Callable[[int, np.random.SeedSequence], AnomalyDetector]


@dataclass(frozen=True)
class EvaluationResult:
    """Per-data-set evaluation of one method across replicates."""

    dataset: str
    method: str
    aucs: tuple[float, ...]
    resources: tuple[ResourceReport, ...] = field(default_factory=tuple)

    @property
    def auc(self) -> MeanStd:
        return mean_std(self.aucs)

    @property
    def mean_resources(self) -> ResourceReport:
        if not self.resources:
            return ResourceReport(cpu_seconds=0.0, memory_bytes=0)
        return ResourceReport.mean(list(self.resources))

    def as_fraction_of(self, full: "EvaluationResult") -> dict[str, object]:
        """One row of Table III/IV: AUC%, Time%, Mem% vs. the full run.

        AUC fraction follows the paper: mean over replicates of the ratio
        of this method's AUC to the full run's AUC on the same replicate
        (falling back to the ratio of means if replicate counts differ).
        """
        if len(self.aucs) == len(full.aucs):
            ratios = [a / b for a, b in zip(self.aucs, full.aucs)]
            auc_frac = mean_std(ratios)
        else:
            auc_frac = MeanStd(
                mean=self.auc.mean / full.auc.mean, std=float("nan"), n=len(self.aucs)
            )
        cost = self.mean_resources.fraction_of(full.mean_resources)
        return {
            "data set": self.dataset,
            "method": self.method,
            "auc_fraction": auc_frac,
            "work_fraction": cost["work_fraction"],
            "time_fraction": cost["time_fraction"],
            "mem_fraction": cost["mem_fraction"],
        }


def evaluate_on_replicates(
    factory: DetectorFactory,
    replicates: Sequence[Replicate],
    *,
    method: str = "",
    rng: "int | np.random.Generator | None" = None,
    collect_resources: bool = True,
) -> EvaluationResult:
    """Fit/score a freshly built detector on each replicate."""
    if not replicates:
        raise DataError("no replicates supplied")
    seeds = spawn_seeds(rng, len(replicates))
    aucs: list[float] = []
    reports: list[ResourceReport] = []
    for i, (rep, seed) in enumerate(zip(replicates, seeds)):
        detector = factory(i, seed)
        detector.fit(rep.x_train, rep.schema)
        scores = detector.score(rep.x_test)
        aucs.append(auc_score(rep.y_test, scores))
        if collect_resources:
            reports.append(detector.resources)
    return EvaluationResult(
        dataset=replicates[0].name,
        method=method,
        aucs=tuple(aucs),
        resources=tuple(reports),
    )
