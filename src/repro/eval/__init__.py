"""Evaluation: AUC, replicate harness, and enrichment statistics."""

from repro.eval.auc import auc_from_curve, auc_score, roc_curve
from repro.eval.harness import (
    DetectorFactory,
    EvaluationResult,
    evaluate_on_replicates,
)
from repro.eval.significance import (
    PermutationResult,
    auc_confidence_interval,
    auc_permutation_test,
)
from repro.eval.stats import (
    MeanStd,
    enrichment_of_top_models,
    hypergeom_enrichment,
    mean_std,
)

__all__ = [
    "auc_score",
    "roc_curve",
    "auc_from_curve",
    "EvaluationResult",
    "DetectorFactory",
    "evaluate_on_replicates",
    "MeanStd",
    "mean_std",
    "hypergeom_enrichment",
    "enrichment_of_top_models",
    "PermutationResult",
    "auc_permutation_test",
    "auc_confidence_interval",
]
