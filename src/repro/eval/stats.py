"""Statistics for the paper's analyses.

Includes the hypergeometric enrichment probability the paper invokes in
§IV ("The hypergeometric probability of finding 2 out of the top 100 known
schizophrenia genes by sampling 20 from a pool of 4173 ... is 0.011"), and
summary helpers for replicate tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.utils.exceptions import DataError


@dataclass(frozen=True)
class MeanStd:
    """Mean and standard deviation over replicates, formatted paper-style."""

    mean: float
    std: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.2f} ({self.std:.2f})"


def mean_std(values) -> MeanStd:
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise DataError("cannot summarize zero values")
    # ddof=1 (sample std) when possible, matching the paper's replicate tables.
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return MeanStd(mean=float(arr.mean()), std=std, n=int(arr.size))


def hypergeom_enrichment(
    n_hits: int, n_drawn: int, n_interesting: int, n_pool: int
) -> float:
    """P(X >= n_hits) for X ~ Hypergeom(pool, interesting, drawn).

    With the paper's numbers — 2 hits among the top 20 models, 100 known
    disease genes, pool of 4173 SNP features — this is the tail probability
    the paper reports (~0.011 under their accounting).
    """
    if min(n_hits, n_drawn, n_interesting, n_pool) < 0:
        raise DataError("hypergeometric arguments must be non-negative")
    if n_drawn > n_pool or n_interesting > n_pool:
        raise DataError("drawn/interesting counts cannot exceed the pool")
    if n_hits == 0:
        return 1.0
    return float(stats.hypergeom.sf(n_hits - 1, n_pool, n_interesting, n_drawn))


def enrichment_of_top_models(
    ranked_feature_ids: np.ndarray,
    interesting_features: np.ndarray,
    n_top: int,
    n_pool: int,
) -> tuple[int, float]:
    """Hits and enrichment p-value of planted features among top models.

    ``ranked_feature_ids`` is most-predictive-first (e.g. from
    ``FRaC.model_quality()``); ``interesting_features`` is the planted
    ground truth (the synthetic stand-in for known disease genes).
    """
    top = np.asarray(ranked_feature_ids, dtype=np.intp)[:n_top]
    interesting = np.asarray(interesting_features, dtype=np.intp)
    n_hits = int(np.isin(top, interesting).sum())
    p = hypergeom_enrichment(n_hits, len(top), len(np.unique(interesting)), n_pool)
    return n_hits, p
