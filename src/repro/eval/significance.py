"""Significance testing for anomaly-detection AUCs.

The paper's test sets are small (as few as 7 anomalies on bild), so an
observed AUC can easily be noise. Two complementary tools:

- :func:`auc_permutation_test` — exact-null Monte Carlo: shuffle the
  labels, recompute AUC, report the tail probability of the observed
  value. Distribution-free and appropriate at any sample size.
- :func:`auc_confidence_interval` — the Hanley–McNeil (1982) normal
  approximation to the AUC standard error, for quick error bars on the
  replicate tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.auc import auc_score
from repro.utils.exceptions import DataError
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class PermutationResult:
    """Outcome of an AUC permutation test."""

    auc: float
    p_value: float
    null_mean: float
    null_std: float
    n_permutations: int


def auc_permutation_test(
    labels: np.ndarray,
    scores: np.ndarray,
    *,
    n_permutations: int = 1000,
    rng: "int | np.random.Generator | None" = None,
) -> PermutationResult:
    """One-sided test of AUC > 0.5 against the label-permutation null."""
    if n_permutations < 1:
        raise DataError(f"n_permutations must be >= 1; got {n_permutations}")
    labels = np.asarray(labels, dtype=bool).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    observed = auc_score(labels, scores)
    gen = as_generator(rng)
    null = np.empty(n_permutations)
    for i in range(n_permutations):
        null[i] = auc_score(gen.permutation(labels), scores)
    exceed = int((null >= observed).sum())
    # Add-one correction keeps the estimate away from an impossible zero.
    p = (exceed + 1) / (n_permutations + 1)
    return PermutationResult(
        auc=float(observed),
        p_value=float(p),
        null_mean=float(null.mean()),
        null_std=float(null.std()),
        n_permutations=n_permutations,
    )


def auc_confidence_interval(
    labels: np.ndarray,
    scores: np.ndarray,
    *,
    confidence: float = 0.95,
) -> tuple[float, float, float]:
    """(auc, low, high) via the Hanley–McNeil standard error.

    ``SE^2 = [A(1-A) + (n_pos-1)(Q1 - A^2) + (n_neg-1)(Q2 - A^2)] /
    (n_pos n_neg)`` with ``Q1 = A/(2-A)``, ``Q2 = 2A^2/(1+A)``; the
    interval is clipped to [0, 1].
    """
    if not 0.0 < confidence < 1.0:
        raise DataError(f"confidence must lie in (0, 1); got {confidence}")
    labels = np.asarray(labels, dtype=bool).ravel()
    a = auc_score(labels, scores)
    n_pos = int(labels.sum())
    n_neg = int(len(labels) - n_pos)
    q1 = a / (2.0 - a)
    q2 = 2.0 * a * a / (1.0 + a)
    var = (
        a * (1 - a) + (n_pos - 1) * (q1 - a * a) + (n_neg - 1) * (q2 - a * a)
    ) / (n_pos * n_neg)
    se = float(np.sqrt(max(var, 0.0)))
    from scipy import stats

    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    return a, max(0.0, a - z * se), min(1.0, a + z * se)
