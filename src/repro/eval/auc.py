"""ROC / AUC evaluation (Spackman 1989), the paper's accuracy metric.

AUC is computed in the Mann-Whitney (rank) form with midranks for ties:
the probability that a uniformly random anomalous sample scores above a
uniformly random normal one, counting ties as half.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.utils.exceptions import DataError


def _validate(labels: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels, dtype=bool).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if labels.shape != scores.shape:
        raise DataError(
            f"labels {labels.shape} and scores {scores.shape} differ in length"
        )
    if not np.isfinite(scores).all():
        raise DataError("scores contain non-finite values")
    n_pos = int(labels.sum())
    if n_pos == 0 or n_pos == len(labels):
        raise DataError(
            "AUC needs at least one anomalous and one normal sample; "
            f"got {n_pos} of {len(labels)}"
        )
    return labels, scores


def auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve; higher scores should mark anomalies."""
    labels, scores = _validate(labels, scores)
    ranks = stats.rankdata(scores)  # midranks for ties
    n_pos = int(labels.sum())
    n_neg = len(labels) - n_pos
    u = ranks[labels].sum() - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def roc_curve(
    labels: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(fpr, tpr, thresholds), descending thresholds, one per unique score.

    The piecewise-linear curve through these points integrates (by the
    trapezoid rule) to exactly :func:`auc_score`.
    """
    labels, scores = _validate(labels, scores)
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    # Collapse threshold ties: take the last index of each distinct score.
    distinct = np.flatnonzero(np.diff(sorted_scores)) if len(sorted_scores) > 1 else np.array([], dtype=np.intp)
    idx = np.concatenate([distinct, [len(sorted_scores) - 1]])
    tp = np.cumsum(sorted_labels)[idx]
    fp = np.cumsum(~sorted_labels)[idx]
    tpr = np.concatenate([[0.0], tp / labels.sum()])
    fpr = np.concatenate([[0.0], fp / (~labels).sum()])
    thresholds = np.concatenate([[np.inf], sorted_scores[idx]])
    return fpr, tpr, thresholds


def auc_from_curve(fpr: np.ndarray, tpr: np.ndarray) -> float:
    """Trapezoid-rule area under an ROC curve."""
    return float(np.trapezoid(tpr, fpr))
